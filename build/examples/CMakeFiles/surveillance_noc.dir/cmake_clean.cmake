file(REMOVE_RECURSE
  "CMakeFiles/surveillance_noc.dir/surveillance_noc.cpp.o"
  "CMakeFiles/surveillance_noc.dir/surveillance_noc.cpp.o.d"
  "surveillance_noc"
  "surveillance_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
