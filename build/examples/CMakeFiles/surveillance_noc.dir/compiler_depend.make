# Empty compiler generated dependencies file for surveillance_noc.
# This may be replaced when dependencies are built.
