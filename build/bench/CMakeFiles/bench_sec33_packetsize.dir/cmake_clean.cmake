file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_packetsize.dir/bench_sec33_packetsize.cpp.o"
  "CMakeFiles/bench_sec33_packetsize.dir/bench_sec33_packetsize.cpp.o.d"
  "bench_sec33_packetsize"
  "bench_sec33_packetsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_packetsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
