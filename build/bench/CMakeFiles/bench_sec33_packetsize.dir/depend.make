# Empty dependencies file for bench_sec33_packetsize.
# This may be replaced when dependencies are built.
