# Empty dependencies file for bench_sec4_jscc.
# This may be replaced when dependencies are built.
