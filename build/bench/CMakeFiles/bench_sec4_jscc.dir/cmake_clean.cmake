file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_jscc.dir/bench_sec4_jscc.cpp.o"
  "CMakeFiles/bench_sec4_jscc.dir/bench_sec4_jscc.cpp.o.d"
  "bench_sec4_jscc"
  "bench_sec4_jscc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_jscc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
