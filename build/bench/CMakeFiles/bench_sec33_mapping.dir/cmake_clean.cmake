file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_mapping.dir/bench_sec33_mapping.cpp.o"
  "CMakeFiles/bench_sec33_mapping.dir/bench_sec33_mapping.cpp.o.d"
  "bench_sec33_mapping"
  "bench_sec33_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
