# Empty dependencies file for bench_sec33_mapping.
# This may be replaced when dependencies are built.
