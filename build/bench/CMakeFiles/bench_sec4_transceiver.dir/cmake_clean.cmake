file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_transceiver.dir/bench_sec4_transceiver.cpp.o"
  "CMakeFiles/bench_sec4_transceiver.dir/bench_sec4_transceiver.cpp.o.d"
  "bench_sec4_transceiver"
  "bench_sec4_transceiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_transceiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
