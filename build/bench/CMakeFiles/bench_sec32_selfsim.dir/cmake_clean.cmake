file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_selfsim.dir/bench_sec32_selfsim.cpp.o"
  "CMakeFiles/bench_sec32_selfsim.dir/bench_sec32_selfsim.cpp.o.d"
  "bench_sec32_selfsim"
  "bench_sec32_selfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_selfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
