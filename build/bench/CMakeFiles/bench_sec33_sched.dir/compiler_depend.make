# Empty compiler generated dependencies file for bench_sec33_sched.
# This may be replaced when dependencies are built.
