file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_sched.dir/bench_sec33_sched.cpp.o"
  "CMakeFiles/bench_sec33_sched.dir/bench_sec33_sched.cpp.o.d"
  "bench_sec33_sched"
  "bench_sec33_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
