file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_ambient.dir/bench_sec5_ambient.cpp.o"
  "CMakeFiles/bench_sec5_ambient.dir/bench_sec5_ambient.cpp.o.d"
  "bench_sec5_ambient"
  "bench_sec5_ambient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_ambient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
