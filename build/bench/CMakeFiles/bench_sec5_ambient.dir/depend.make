# Empty dependencies file for bench_sec5_ambient.
# This may be replaced when dependencies are built.
