file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_asip.dir/bench_sec31_asip.cpp.o"
  "CMakeFiles/bench_sec31_asip.dir/bench_sec31_asip.cpp.o.d"
  "bench_sec31_asip"
  "bench_sec31_asip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_asip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
