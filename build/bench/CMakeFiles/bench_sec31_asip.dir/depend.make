# Empty dependencies file for bench_sec31_asip.
# This may be replaced when dependencies are built.
