file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_fgs.dir/bench_sec41_fgs.cpp.o"
  "CMakeFiles/bench_sec41_fgs.dir/bench_sec41_fgs.cpp.o.d"
  "bench_sec41_fgs"
  "bench_sec41_fgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_fgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
