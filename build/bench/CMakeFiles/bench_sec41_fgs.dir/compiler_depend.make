# Empty compiler generated dependencies file for bench_sec41_fgs.
# This may be replaced when dependencies are built.
