# Empty dependencies file for bench_sec42_manet.
# This may be replaced when dependencies are built.
