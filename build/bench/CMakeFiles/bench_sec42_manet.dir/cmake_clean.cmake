file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_manet.dir/bench_sec42_manet.cpp.o"
  "CMakeFiles/bench_sec42_manet.dir/bench_sec42_manet.cpp.o.d"
  "bench_sec42_manet"
  "bench_sec42_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
