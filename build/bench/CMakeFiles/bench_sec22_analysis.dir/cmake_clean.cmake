file(REMOVE_RECURSE
  "CMakeFiles/bench_sec22_analysis.dir/bench_sec22_analysis.cpp.o"
  "CMakeFiles/bench_sec22_analysis.dir/bench_sec22_analysis.cpp.o.d"
  "bench_sec22_analysis"
  "bench_sec22_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec22_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
