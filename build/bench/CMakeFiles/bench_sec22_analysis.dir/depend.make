# Empty dependencies file for bench_sec22_analysis.
# This may be replaced when dependencies are built.
