# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_markov "/root/repo/build/tests/test_markov")
set_tests_properties(test_markov PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_traffic "/root/repo/build/tests/test_traffic")
set_tests_properties(test_traffic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stream "/root/repo/build/tests/test_stream")
set_tests_properties(test_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_asip "/root/repo/build/tests/test_asip")
set_tests_properties(test_asip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_noc "/root/repo/build/tests/test_noc")
set_tests_properties(test_noc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_wireless "/root/repo/build/tests/test_wireless")
set_tests_properties(test_wireless PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_streaming "/root/repo/build/tests/test_streaming")
set_tests_properties(test_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_manet "/root/repo/build/tests/test_manet")
set_tests_properties(test_manet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property "/root/repo/build/tests/test_property")
set_tests_properties(test_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_robustness "/root/repo/build/tests/test_robustness")
set_tests_properties(test_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;holms_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_claims "/root/repo/build/tests/test_claims")
set_tests_properties(test_claims PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;holms_test;/root/repo/tests/CMakeLists.txt;0;")
