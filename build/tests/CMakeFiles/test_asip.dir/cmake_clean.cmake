file(REMOVE_RECURSE
  "CMakeFiles/test_asip.dir/test_asip.cpp.o"
  "CMakeFiles/test_asip.dir/test_asip.cpp.o.d"
  "test_asip"
  "test_asip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
