
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_asip.cpp" "tests/CMakeFiles/test_asip.dir/test_asip.cpp.o" "gcc" "tests/CMakeFiles/test_asip.dir/test_asip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/holms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/holms_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/holms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/holms_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/manet/CMakeFiles/holms_manet.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/holms_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/asip/CMakeFiles/holms_asip.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/holms_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/holms_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/holms_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
