# Empty dependencies file for test_asip.
# This may be replaced when dependencies are built.
