file(REMOVE_RECURSE
  "CMakeFiles/test_wireless.dir/test_wireless.cpp.o"
  "CMakeFiles/test_wireless.dir/test_wireless.cpp.o.d"
  "test_wireless"
  "test_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
