file(REMOVE_RECURSE
  "CMakeFiles/test_claims.dir/test_claims.cpp.o"
  "CMakeFiles/test_claims.dir/test_claims.cpp.o.d"
  "test_claims"
  "test_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
