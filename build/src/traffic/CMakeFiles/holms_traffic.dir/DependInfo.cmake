
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/selfsim.cpp" "src/traffic/CMakeFiles/holms_traffic.dir/selfsim.cpp.o" "gcc" "src/traffic/CMakeFiles/holms_traffic.dir/selfsim.cpp.o.d"
  "/root/repo/src/traffic/sources.cpp" "src/traffic/CMakeFiles/holms_traffic.dir/sources.cpp.o" "gcc" "src/traffic/CMakeFiles/holms_traffic.dir/sources.cpp.o.d"
  "/root/repo/src/traffic/trace_io.cpp" "src/traffic/CMakeFiles/holms_traffic.dir/trace_io.cpp.o" "gcc" "src/traffic/CMakeFiles/holms_traffic.dir/trace_io.cpp.o.d"
  "/root/repo/src/traffic/video.cpp" "src/traffic/CMakeFiles/holms_traffic.dir/video.cpp.o" "gcc" "src/traffic/CMakeFiles/holms_traffic.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
