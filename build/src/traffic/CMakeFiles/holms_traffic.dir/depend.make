# Empty dependencies file for holms_traffic.
# This may be replaced when dependencies are built.
