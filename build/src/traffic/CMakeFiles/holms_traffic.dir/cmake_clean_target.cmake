file(REMOVE_RECURSE
  "libholms_traffic.a"
)
