file(REMOVE_RECURSE
  "CMakeFiles/holms_traffic.dir/selfsim.cpp.o"
  "CMakeFiles/holms_traffic.dir/selfsim.cpp.o.d"
  "CMakeFiles/holms_traffic.dir/sources.cpp.o"
  "CMakeFiles/holms_traffic.dir/sources.cpp.o.d"
  "CMakeFiles/holms_traffic.dir/trace_io.cpp.o"
  "CMakeFiles/holms_traffic.dir/trace_io.cpp.o.d"
  "CMakeFiles/holms_traffic.dir/video.cpp.o"
  "CMakeFiles/holms_traffic.dir/video.cpp.o.d"
  "libholms_traffic.a"
  "libholms_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
