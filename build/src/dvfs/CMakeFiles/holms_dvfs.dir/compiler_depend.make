# Empty compiler generated dependencies file for holms_dvfs.
# This may be replaced when dependencies are built.
