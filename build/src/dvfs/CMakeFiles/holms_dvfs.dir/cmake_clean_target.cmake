file(REMOVE_RECURSE
  "libholms_dvfs.a"
)
