file(REMOVE_RECURSE
  "CMakeFiles/holms_dvfs.dir/dvfs.cpp.o"
  "CMakeFiles/holms_dvfs.dir/dvfs.cpp.o.d"
  "libholms_dvfs.a"
  "libholms_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
