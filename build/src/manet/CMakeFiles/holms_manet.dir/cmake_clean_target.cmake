file(REMOVE_RECURSE
  "libholms_manet.a"
)
