file(REMOVE_RECURSE
  "CMakeFiles/holms_manet.dir/network.cpp.o"
  "CMakeFiles/holms_manet.dir/network.cpp.o.d"
  "CMakeFiles/holms_manet.dir/routing.cpp.o"
  "CMakeFiles/holms_manet.dir/routing.cpp.o.d"
  "libholms_manet.a"
  "libholms_manet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_manet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
