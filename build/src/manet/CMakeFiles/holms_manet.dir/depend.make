# Empty dependencies file for holms_manet.
# This may be replaced when dependencies are built.
