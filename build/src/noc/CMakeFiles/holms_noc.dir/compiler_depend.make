# Empty compiler generated dependencies file for holms_noc.
# This may be replaced when dependencies are built.
