
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/mapping.cpp" "src/noc/CMakeFiles/holms_noc.dir/mapping.cpp.o" "gcc" "src/noc/CMakeFiles/holms_noc.dir/mapping.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/holms_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/holms_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/scheduling.cpp" "src/noc/CMakeFiles/holms_noc.dir/scheduling.cpp.o" "gcc" "src/noc/CMakeFiles/holms_noc.dir/scheduling.cpp.o.d"
  "/root/repo/src/noc/taskgraph.cpp" "src/noc/CMakeFiles/holms_noc.dir/taskgraph.cpp.o" "gcc" "src/noc/CMakeFiles/holms_noc.dir/taskgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/holms_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/holms_dvfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
