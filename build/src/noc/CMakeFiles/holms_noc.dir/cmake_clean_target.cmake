file(REMOVE_RECURSE
  "libholms_noc.a"
)
