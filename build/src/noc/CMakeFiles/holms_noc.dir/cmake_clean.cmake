file(REMOVE_RECURSE
  "CMakeFiles/holms_noc.dir/mapping.cpp.o"
  "CMakeFiles/holms_noc.dir/mapping.cpp.o.d"
  "CMakeFiles/holms_noc.dir/router.cpp.o"
  "CMakeFiles/holms_noc.dir/router.cpp.o.d"
  "CMakeFiles/holms_noc.dir/scheduling.cpp.o"
  "CMakeFiles/holms_noc.dir/scheduling.cpp.o.d"
  "CMakeFiles/holms_noc.dir/taskgraph.cpp.o"
  "CMakeFiles/holms_noc.dir/taskgraph.cpp.o.d"
  "libholms_noc.a"
  "libholms_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
