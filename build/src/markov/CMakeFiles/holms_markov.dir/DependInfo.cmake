
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/chain.cpp" "src/markov/CMakeFiles/holms_markov.dir/chain.cpp.o" "gcc" "src/markov/CMakeFiles/holms_markov.dir/chain.cpp.o.d"
  "/root/repo/src/markov/jackson.cpp" "src/markov/CMakeFiles/holms_markov.dir/jackson.cpp.o" "gcc" "src/markov/CMakeFiles/holms_markov.dir/jackson.cpp.o.d"
  "/root/repo/src/markov/queueing.cpp" "src/markov/CMakeFiles/holms_markov.dir/queueing.cpp.o" "gcc" "src/markov/CMakeFiles/holms_markov.dir/queueing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
