file(REMOVE_RECURSE
  "libholms_markov.a"
)
