file(REMOVE_RECURSE
  "CMakeFiles/holms_markov.dir/chain.cpp.o"
  "CMakeFiles/holms_markov.dir/chain.cpp.o.d"
  "CMakeFiles/holms_markov.dir/jackson.cpp.o"
  "CMakeFiles/holms_markov.dir/jackson.cpp.o.d"
  "CMakeFiles/holms_markov.dir/queueing.cpp.o"
  "CMakeFiles/holms_markov.dir/queueing.cpp.o.d"
  "libholms_markov.a"
  "libholms_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
