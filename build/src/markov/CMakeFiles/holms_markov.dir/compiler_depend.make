# Empty compiler generated dependencies file for holms_markov.
# This may be replaced when dependencies are built.
