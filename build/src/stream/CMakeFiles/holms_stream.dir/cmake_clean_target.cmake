file(REMOVE_RECURSE
  "libholms_stream.a"
)
