# Empty dependencies file for holms_stream.
# This may be replaced when dependencies are built.
