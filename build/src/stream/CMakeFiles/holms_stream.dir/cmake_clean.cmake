file(REMOVE_RECURSE
  "CMakeFiles/holms_stream.dir/channel.cpp.o"
  "CMakeFiles/holms_stream.dir/channel.cpp.o.d"
  "CMakeFiles/holms_stream.dir/kpn.cpp.o"
  "CMakeFiles/holms_stream.dir/kpn.cpp.o.d"
  "CMakeFiles/holms_stream.dir/lipsync.cpp.o"
  "CMakeFiles/holms_stream.dir/lipsync.cpp.o.d"
  "CMakeFiles/holms_stream.dir/mpeg2.cpp.o"
  "CMakeFiles/holms_stream.dir/mpeg2.cpp.o.d"
  "CMakeFiles/holms_stream.dir/stream_system.cpp.o"
  "CMakeFiles/holms_stream.dir/stream_system.cpp.o.d"
  "libholms_stream.a"
  "libholms_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
