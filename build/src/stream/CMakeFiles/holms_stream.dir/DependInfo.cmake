
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/channel.cpp" "src/stream/CMakeFiles/holms_stream.dir/channel.cpp.o" "gcc" "src/stream/CMakeFiles/holms_stream.dir/channel.cpp.o.d"
  "/root/repo/src/stream/kpn.cpp" "src/stream/CMakeFiles/holms_stream.dir/kpn.cpp.o" "gcc" "src/stream/CMakeFiles/holms_stream.dir/kpn.cpp.o.d"
  "/root/repo/src/stream/lipsync.cpp" "src/stream/CMakeFiles/holms_stream.dir/lipsync.cpp.o" "gcc" "src/stream/CMakeFiles/holms_stream.dir/lipsync.cpp.o.d"
  "/root/repo/src/stream/mpeg2.cpp" "src/stream/CMakeFiles/holms_stream.dir/mpeg2.cpp.o" "gcc" "src/stream/CMakeFiles/holms_stream.dir/mpeg2.cpp.o.d"
  "/root/repo/src/stream/stream_system.cpp" "src/stream/CMakeFiles/holms_stream.dir/stream_system.cpp.o" "gcc" "src/stream/CMakeFiles/holms_stream.dir/stream_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/holms_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/holms_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
