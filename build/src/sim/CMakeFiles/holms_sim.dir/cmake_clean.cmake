file(REMOVE_RECURSE
  "CMakeFiles/holms_sim.dir/simulator.cpp.o"
  "CMakeFiles/holms_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/holms_sim.dir/stats.cpp.o"
  "CMakeFiles/holms_sim.dir/stats.cpp.o.d"
  "libholms_sim.a"
  "libholms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
