file(REMOVE_RECURSE
  "libholms_sim.a"
)
