# Empty dependencies file for holms_sim.
# This may be replaced when dependencies are built.
