# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("markov")
subdirs("traffic")
subdirs("dvfs")
subdirs("stream")
subdirs("asip")
subdirs("noc")
subdirs("wireless")
subdirs("streaming")
subdirs("manet")
subdirs("core")
