
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asip/assembler.cpp" "src/asip/CMakeFiles/holms_asip.dir/assembler.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/assembler.cpp.o.d"
  "/root/repo/src/asip/builder.cpp" "src/asip/CMakeFiles/holms_asip.dir/builder.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/builder.cpp.o.d"
  "/root/repo/src/asip/extensions.cpp" "src/asip/CMakeFiles/holms_asip.dir/extensions.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/extensions.cpp.o.d"
  "/root/repo/src/asip/flow.cpp" "src/asip/CMakeFiles/holms_asip.dir/flow.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/flow.cpp.o.d"
  "/root/repo/src/asip/iss.cpp" "src/asip/CMakeFiles/holms_asip.dir/iss.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/iss.cpp.o.d"
  "/root/repo/src/asip/jpeg.cpp" "src/asip/CMakeFiles/holms_asip.dir/jpeg.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/jpeg.cpp.o.d"
  "/root/repo/src/asip/kernels.cpp" "src/asip/CMakeFiles/holms_asip.dir/kernels.cpp.o" "gcc" "src/asip/CMakeFiles/holms_asip.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
