# Empty compiler generated dependencies file for holms_asip.
# This may be replaced when dependencies are built.
