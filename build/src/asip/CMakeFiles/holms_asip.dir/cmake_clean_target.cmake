file(REMOVE_RECURSE
  "libholms_asip.a"
)
