file(REMOVE_RECURSE
  "CMakeFiles/holms_asip.dir/assembler.cpp.o"
  "CMakeFiles/holms_asip.dir/assembler.cpp.o.d"
  "CMakeFiles/holms_asip.dir/builder.cpp.o"
  "CMakeFiles/holms_asip.dir/builder.cpp.o.d"
  "CMakeFiles/holms_asip.dir/extensions.cpp.o"
  "CMakeFiles/holms_asip.dir/extensions.cpp.o.d"
  "CMakeFiles/holms_asip.dir/flow.cpp.o"
  "CMakeFiles/holms_asip.dir/flow.cpp.o.d"
  "CMakeFiles/holms_asip.dir/iss.cpp.o"
  "CMakeFiles/holms_asip.dir/iss.cpp.o.d"
  "CMakeFiles/holms_asip.dir/jpeg.cpp.o"
  "CMakeFiles/holms_asip.dir/jpeg.cpp.o.d"
  "CMakeFiles/holms_asip.dir/kernels.cpp.o"
  "CMakeFiles/holms_asip.dir/kernels.cpp.o.d"
  "libholms_asip.a"
  "libholms_asip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_asip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
