file(REMOVE_RECURSE
  "CMakeFiles/holms_core.dir/ambient.cpp.o"
  "CMakeFiles/holms_core.dir/ambient.cpp.o.d"
  "CMakeFiles/holms_core.dir/evaluator.cpp.o"
  "CMakeFiles/holms_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/holms_core.dir/explorer.cpp.o"
  "CMakeFiles/holms_core.dir/explorer.cpp.o.d"
  "libholms_core.a"
  "libholms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
