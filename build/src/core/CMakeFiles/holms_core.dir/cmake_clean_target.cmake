file(REMOVE_RECURSE
  "libholms_core.a"
)
