
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ambient.cpp" "src/core/CMakeFiles/holms_core.dir/ambient.cpp.o" "gcc" "src/core/CMakeFiles/holms_core.dir/ambient.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/holms_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/holms_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/holms_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/holms_core.dir/explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/holms_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/holms_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/holms_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/holms_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/holms_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/holms_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
