# Empty compiler generated dependencies file for holms_core.
# This may be replaced when dependencies are built.
