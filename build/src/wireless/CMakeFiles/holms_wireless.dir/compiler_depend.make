# Empty compiler generated dependencies file for holms_wireless.
# This may be replaced when dependencies are built.
