file(REMOVE_RECURSE
  "libholms_wireless.a"
)
