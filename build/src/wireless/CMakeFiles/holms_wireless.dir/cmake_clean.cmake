file(REMOVE_RECURSE
  "CMakeFiles/holms_wireless.dir/jscc.cpp.o"
  "CMakeFiles/holms_wireless.dir/jscc.cpp.o.d"
  "CMakeFiles/holms_wireless.dir/link_sim.cpp.o"
  "CMakeFiles/holms_wireless.dir/link_sim.cpp.o.d"
  "CMakeFiles/holms_wireless.dir/modulation.cpp.o"
  "CMakeFiles/holms_wireless.dir/modulation.cpp.o.d"
  "CMakeFiles/holms_wireless.dir/transceiver.cpp.o"
  "CMakeFiles/holms_wireless.dir/transceiver.cpp.o.d"
  "libholms_wireless.a"
  "libholms_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
