
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wireless/jscc.cpp" "src/wireless/CMakeFiles/holms_wireless.dir/jscc.cpp.o" "gcc" "src/wireless/CMakeFiles/holms_wireless.dir/jscc.cpp.o.d"
  "/root/repo/src/wireless/link_sim.cpp" "src/wireless/CMakeFiles/holms_wireless.dir/link_sim.cpp.o" "gcc" "src/wireless/CMakeFiles/holms_wireless.dir/link_sim.cpp.o.d"
  "/root/repo/src/wireless/modulation.cpp" "src/wireless/CMakeFiles/holms_wireless.dir/modulation.cpp.o" "gcc" "src/wireless/CMakeFiles/holms_wireless.dir/modulation.cpp.o.d"
  "/root/repo/src/wireless/transceiver.cpp" "src/wireless/CMakeFiles/holms_wireless.dir/transceiver.cpp.o" "gcc" "src/wireless/CMakeFiles/holms_wireless.dir/transceiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
