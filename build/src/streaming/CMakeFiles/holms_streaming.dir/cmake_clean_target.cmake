file(REMOVE_RECURSE
  "libholms_streaming.a"
)
