# Empty compiler generated dependencies file for holms_streaming.
# This may be replaced when dependencies are built.
