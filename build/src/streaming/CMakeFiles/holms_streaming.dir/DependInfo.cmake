
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/fgs.cpp" "src/streaming/CMakeFiles/holms_streaming.dir/fgs.cpp.o" "gcc" "src/streaming/CMakeFiles/holms_streaming.dir/fgs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/holms_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/holms_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
