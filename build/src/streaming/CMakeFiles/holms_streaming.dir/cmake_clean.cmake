file(REMOVE_RECURSE
  "CMakeFiles/holms_streaming.dir/fgs.cpp.o"
  "CMakeFiles/holms_streaming.dir/fgs.cpp.o.d"
  "libholms_streaming.a"
  "libholms_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holms_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
