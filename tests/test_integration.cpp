// Cross-module integration tests: analytical vs simulated steady state,
// traffic through decoders, mapping quality measured in the flit simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "sim/random.hpp"
#include "stream/mpeg2.hpp"
#include "stream/stream_system.hpp"
#include "traffic/sources.hpp"
#include "traffic/video.hpp"

namespace {

using holms::sim::Rng;

// E2's core: the DES stream simulation and the M/M/1/K analytical model must
// agree on the same system (paper §2.2).
TEST(Integration, StreamSimulationMatchesMm1kAnalysis) {
  // Map the stream onto M/M/1/K: Poisson arrivals rate lambda; service =
  // deterministic transmission time — so use M/D/1-like behaviour; for exact
  // comparison make the channel the bottleneck with exponential-ish service
  // by checking occupancy and loss against M/M/1/K within tolerance bands.
  const double lambda = 80.0;
  const double service = 1.0 / 100.0;  // 8000 bits at 800 kbps
  holms::stream::StreamConfig cfg;
  cfg.packet_size_bits = 8000.0;
  cfg.link.bits_per_second = 8000.0 / service;
  cfg.link.propagation_delay = 0.0;
  cfg.tx_capacity = 8;
  cfg.rx_capacity = 64;

  holms::traffic::PoissonSource src(lambda, Rng(1));
  holms::stream::IidErrorModel err(0.0, Rng(2));
  const auto qos = run_stream(src, err, cfg, 400.0);

  // Deterministic service: the analytical reference is M/D/1-flavored, so
  // M/M/1/K brackets it from above on queue length.
  const auto mm = holms::markov::mm1k(lambda, 1.0 / service, 8);
  const auto md = holms::markov::md1(lambda, service);
  EXPECT_LT(qos.mean_tx_occupancy, mm.mean_queue_length * 1.15);
  EXPECT_GT(qos.mean_tx_occupancy, md.mean_queue_length * 0.5);
  // Loss should be below the (pessimistic) M/M/1/K blocking probability.
  EXPECT_LT(qos.loss_rate, mm.blocking_probability * 1.2 + 5e-3);
  EXPECT_NEAR(qos.throughput, lambda * (1.0 - qos.loss_rate), 2.0);
}

TEST(Integration, AnalysisAgreesWithSimulationOnProducerConsumer) {
  // Exponential producer/consumer on the DES kernel vs the CTMC model.
  const double prod = 40.0, cons = 50.0;
  const std::size_t cap = 6;
  holms::markov::ProducerConsumerModel model;
  model.producer_rate = prod;
  model.consumer_rate = cons;
  model.buffer_capacity = cap;
  const auto analytic = model.analyze();

  // DES: exponential gaps, blocking producer, exponential service.
  holms::sim::Simulator sim;
  Rng rng(3);
  std::size_t occupancy = 0;
  holms::sim::TimeWeightedStats occ;
  std::uint64_t consumed = 0;
  bool consumer_busy = false;
  std::function<void()> producer_arrive;
  std::function<void()> try_consume = [&] {
    if (consumer_busy || occupancy == 0) return;
    consumer_busy = true;
    sim.schedule_in(rng.exponential(cons), [&] {
      --occupancy;
      occ.update(sim.now(), static_cast<double>(occupancy));
      ++consumed;
      consumer_busy = false;
      try_consume();
    });
  };
  producer_arrive = [&] {
    if (occupancy < cap) {
      ++occupancy;
      occ.update(sim.now(), static_cast<double>(occupancy));
      try_consume();
    }
    // A blocked producer retries immediately at the next exponential gap —
    // memorylessness makes this equivalent to the CTMC's blocked state.
    sim.schedule_in(rng.exponential(prod), producer_arrive);
  };
  sim.schedule_in(rng.exponential(prod), producer_arrive);
  sim.run(2000.0);
  occ.finish(sim.now());

  EXPECT_NEAR(occ.mean(), analytic.mean_occupancy, 0.15);
  EXPECT_NEAR(consumed / sim.now(), analytic.throughput, 1.0);
}

TEST(Integration, VideoTraceDrivesMpeg2UtilizationPredictably) {
  // CPU utilization ~= bitrate * total cycles/bit / frequency.
  holms::traffic::VideoTraceGenerator::Params vp;
  vp.mean_bitrate = 2e6;
  vp.scene_strength = 0.0;
  holms::traffic::VideoTraceGenerator video(vp, Rng(4));
  holms::stream::Mpeg2Config cfg;
  cfg.cpu_frequency_hz = 600e6;
  const auto rep = run_mpeg2_decoder(video, 600, cfg, 1.0);
  const double cycles_per_bit =
      cfg.vld_cycles_per_bit + cfg.idct_cycles_per_bit + cfg.mv_cycles_per_bit;
  const double predicted = vp.mean_bitrate * cycles_per_bit /
                           cfg.cpu_frequency_hz;
  EXPECT_NEAR(rep.cpu0_utilization, predicted, 0.08);
  EXPECT_EQ(rep.frames_dropped, 0u);
}

TEST(Integration, EnergyAwareMappingWinsInFlitSimulatorToo) {
  // The SA mapper optimizes the analytic bit-energy model; verify the win
  // carries over to the flit-accurate router simulation (E4 cross-check).
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  Rng rng(5);
  holms::noc::SaOptions sa;
  sa.iterations = 8000;
  const auto good = holms::noc::sa_mapping(g, mesh, em, rng, sa);
  const auto bad = holms::noc::random_mapping(g.num_nodes(), mesh, rng);

  auto run_mapping = [&](const holms::noc::Mapping& m) {
    holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{}, Rng(6));
    const double total = g.total_volume();
    for (const auto& e : g.edges()) {
      holms::noc::Flow f;
      f.src = m[e.src];
      f.dst = m[e.dst];
      if (f.src == f.dst) continue;  // same tile: no network traffic
      f.packet_flits = 8;
      // Scale volumes to a light aggregate injection rate.
      f.packets_per_cycle = 0.25 * e.volume_bits / total;
      sim.add_flow(f);
    }
    sim.run(40000);
    return sim.stats();
  };
  const auto sg = run_mapping(good);
  const auto sb = run_mapping(bad);
  EXPECT_LT(sg.energy_per_bit_pj, sb.energy_per_bit_pj);
  EXPECT_LT(sg.mean_packet_latency, sb.mean_packet_latency * 1.05);
}

TEST(Integration, HeavierTailedArrivalsNeedDeeperBuffersAtSameLoad) {
  // E3's core: at equal mean load, LRD traffic overflows a finite buffer far
  // more than Poisson — demonstrated end-to-end through run_stream.
  holms::stream::StreamConfig cfg;
  cfg.packet_size_bits = 1000.0;
  cfg.link.bits_per_second = 100e3;  // service rate 100 pkts/s
  cfg.link.propagation_delay = 0.0;
  cfg.tx_capacity = 20;

  const double rate = 70.0;  // rho = 0.7
  holms::traffic::PoissonSource poisson(rate, Rng(7));
  Rng rng(8);
  auto lrd = holms::traffic::make_selfsimilar_aggregate(24, rate, 1.4, rng);
  holms::stream::IidErrorModel e1(0.0, Rng(9)), e2(0.0, Rng(10));
  const auto qp = run_stream(poisson, e1, cfg, 500.0);
  const auto ql = run_stream(*lrd, e2, cfg, 500.0);
  EXPECT_GT(ql.loss_rate, 4.0 * qp.loss_rate);
  EXPECT_GT(ql.mean_tx_occupancy, qp.mean_tx_occupancy);
}

}  // namespace
