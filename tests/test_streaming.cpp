// Unit tests for energy-aware MPEG-4 FGS streaming (holms::streaming) —
// paper §4.1.
#include <gtest/gtest.h>

#include "dvfs/dvfs.hpp"
#include "streaming/fgs.hpp"

namespace {

using holms::dvfs::Processor;
using holms::sim::Rng;
using namespace holms::streaming;

Processor make_cpu() {
  return Processor(holms::dvfs::xscale_points(), holms::dvfs::PowerModel{});
}

// ---------- DVFS substrate ----------

TEST(Dvfs, PointsSortedAndPowerMonotone) {
  Processor cpu = make_cpu();
  ASSERT_GE(cpu.num_points(), 3u);
  for (std::size_t i = 0; i + 1 < cpu.num_points(); ++i) {
    EXPECT_LT(cpu.point(i).frequency_hz, cpu.point(i + 1).frequency_hz);
    EXPECT_LE(cpu.point(i).voltage, cpu.point(i + 1).voltage);
    EXPECT_LT(cpu.model().total_power(cpu.point(i)),
              cpu.model().total_power(cpu.point(i + 1)));
  }
}

TEST(Dvfs, LowerLevelSavesEnergyPerCycle) {
  Processor cpu = make_cpu();
  const double cycles = 1e8;
  cpu.set_level(0);
  const double e_low = cpu.energy_for_cycles(cycles);
  cpu.set_level(cpu.num_points() - 1);
  const double e_high = cpu.energy_for_cycles(cycles);
  EXPECT_LT(e_low, e_high);
  // V^2 scaling: the ratio should exceed the frequency ratio alone.
  EXPECT_GT(e_high / e_low, 1.5);
}

TEST(Dvfs, MinLevelForDeadline) {
  Processor cpu = make_cpu();
  // 400e6 cycles in 1 s -> needs the 400 MHz point (index 2).
  EXPECT_EQ(cpu.min_level_for(400e6, 1.0), 2u);
  // Impossible deadline -> num_points().
  EXPECT_EQ(cpu.min_level_for(2e9, 1.0), cpu.num_points());
  // Trivial load -> lowest point.
  EXPECT_EQ(cpu.min_level_for(1e6, 1.0), 0u);
}

TEST(Dvfs, SlackEnergySavingPositiveWithSlack) {
  Processor cpu = make_cpu();
  EXPECT_GT(cpu.slack_energy_saving(100e6, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(cpu.slack_energy_saving(5e9, 1.0), 0.0);  // infeasible
}

TEST(Dvfs, GovernorTracksTarget) {
  Processor cpu = make_cpu();
  cpu.set_level(cpu.num_points() - 1);
  holms::dvfs::LoadTrackingGovernor gov(cpu, 0.9);
  // Persistent low load walks the ladder down...
  for (int i = 0; i < 10; ++i) gov.observe(0.2);
  EXPECT_EQ(cpu.level(), 0u);
  // ...and saturating load walks it back up.
  for (int i = 0; i < 10; ++i) gov.observe(1.0);
  EXPECT_EQ(cpu.level(), cpu.num_points() - 1);
}

TEST(Dvfs, GovernorDoesNotStepDownIntoOverload) {
  Processor cpu = make_cpu();
  cpu.set_level(3);  // 600 MHz
  holms::dvfs::LoadTrackingGovernor gov(cpu, 0.9, 0.05);
  // 0.8 utilization at 600 MHz would be 1.2 at 400 MHz: must hold.
  gov.observe(0.8);
  EXPECT_EQ(cpu.level(), 3u);
}

// ---------- channel trace ----------

TEST(ChannelTrace, CapacitiesPositiveAndVarying) {
  ChannelTrace tr(Rng(1));
  double lo = 1e18, hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double c = tr.next_capacity_bps();
    EXPECT_GT(c, 0.0);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi / lo, 3.0);  // visits distinct states
}

// ---------- FGS session ----------

FgsConfig default_cfg() { return FgsConfig{}; }

TEST(Fgs, FeedbackKeepsNormalizedLoadNearUnity) {
  // The headline mechanism of [28]: normalized decoding load pinned at 1.
  Processor cpu = make_cpu();
  ChannelTrace tr(Rng(2));
  const FgsReport r = run_fgs_session(FgsPolicy::kClientFeedback,
                                      default_cfg(), cpu, tr, 2000);
  EXPECT_GT(r.mean_normalized_load, 0.7);
  EXPECT_LE(r.mean_normalized_load, 1.05);
  EXPECT_LT(r.wasted_rx_fraction, 0.02);
}

TEST(Fgs, NonAdaptiveWastesReceivedBitsWhenCpuSlow) {
  // Cripple the client CPU ladder so even max frequency can't decode the
  // typical stream: the blind server keeps pushing anyway.
  std::vector<holms::dvfs::OperatingPoint> weak = {
      {80e6, 0.75}, {120e6, 0.9}, {150e6, 1.0}};
  Processor cpu(weak, holms::dvfs::PowerModel{});
  ChannelTrace tr(Rng(3));
  const FgsReport r = run_fgs_session(FgsPolicy::kNonAdaptive, default_cfg(),
                                      cpu, tr, 2000);
  EXPECT_GT(r.wasted_rx_fraction, 0.1);
  EXPECT_GT(r.mean_normalized_load, 1.1);
}

TEST(Fgs, FeedbackReducesClientCommunicationEnergy) {
  // Same weak client, same channel seed: the adaptive policy receives only
  // what it can decode -> lower RX energy (the ~15% claim's shape).
  std::vector<holms::dvfs::OperatingPoint> weak = {
      {100e6, 0.75}, {200e6, 0.95}, {300e6, 1.1}};
  ChannelTrace t1(Rng(4)), t2(Rng(4));
  Processor c1(weak, holms::dvfs::PowerModel{});
  Processor c2(weak, holms::dvfs::PowerModel{});
  const FgsReport blind =
      run_fgs_session(FgsPolicy::kNonAdaptive, default_cfg(), c1, t1, 2000);
  const FgsReport adaptive = run_fgs_session(FgsPolicy::kClientFeedback,
                                             default_cfg(), c2, t2, 2000);
  EXPECT_LT(adaptive.client_rx_energy_j, blind.client_rx_energy_j);
  EXPECT_LT(adaptive.client_total_energy_j, blind.client_total_energy_j);
  // Quality is not sacrificed beyond what the client could decode anyway.
  EXPECT_NEAR(adaptive.mean_psnr_db, blind.mean_psnr_db, 1.0);
}

TEST(Fgs, DvfsSavesComputeEnergyOnCapableClient) {
  // A capable client at full speed vs feedback-driven DVFS: same decoded
  // stream, lower CPU energy.
  ChannelTrace t1(Rng(5)), t2(Rng(5));
  Processor c1 = make_cpu();
  Processor c2 = make_cpu();
  const FgsReport blind =
      run_fgs_session(FgsPolicy::kNonAdaptive, default_cfg(), c1, t1, 2000);
  const FgsReport adaptive = run_fgs_session(FgsPolicy::kClientFeedback,
                                             default_cfg(), c2, t2, 2000);
  EXPECT_LT(adaptive.client_cpu_energy_j, blind.client_cpu_energy_j);
  EXPECT_GE(adaptive.mean_psnr_db, blind.mean_psnr_db - 0.5);
}

TEST(Fgs, BaseLayerProtected) {
  Processor cpu = make_cpu();
  ChannelTrace tr(Rng(6));
  const FgsReport r = run_fgs_session(FgsPolicy::kClientFeedback,
                                      default_cfg(), cpu, tr, 2000);
  // The worst channel state (0.35 Mbps) still exceeds the 256 kbps base
  // layer, so base-layer misses should be rare.
  EXPECT_LT(static_cast<double>(r.base_layer_misses) /
                static_cast<double>(r.slots),
            0.05);
  EXPECT_GE(r.min_psnr_db, 9.0);
}

TEST(Fgs, QualityGrowsWithChannelQuality) {
  Processor c1 = make_cpu(), c2 = make_cpu();
  ChannelTrace good(Rng(7), 6e6, 3e6, 1e6);
  ChannelTrace bad(Rng(7), 1.2e6, 0.6e6, 0.3e6);
  const FgsReport rg = run_fgs_session(FgsPolicy::kClientFeedback,
                                       default_cfg(), c1, good, 1500);
  const FgsReport rb = run_fgs_session(FgsPolicy::kClientFeedback,
                                       default_cfg(), c2, bad, 1500);
  EXPECT_GT(rg.mean_psnr_db, rb.mean_psnr_db);
}

// ---------- ad hoc (distributed) mode, §4.1 ----------

TEST(FgsAdhoc, MoreClientsMeansLessQualityEach) {
  const FgsConfig cfg;
  ChannelTrace t2{Rng(10)};
  ChannelTrace t6{Rng(10)};
  std::vector<holms::dvfs::Processor> two(2, make_cpu());
  std::vector<holms::dvfs::Processor> six(6, make_cpu());
  const AdhocReport r2 =
      run_fgs_adhoc(FgsPolicy::kClientFeedback, cfg, two, t2, 1500);
  const AdhocReport r6 =
      run_fgs_adhoc(FgsPolicy::kClientFeedback, cfg, six, t6, 1500);
  ASSERT_EQ(r2.per_client.size(), 2u);
  ASSERT_EQ(r6.per_client.size(), 6u);
  EXPECT_GT(r2.mean_psnr_db, r6.mean_psnr_db);
}

TEST(FgsAdhoc, FeedbackSavesEnergyInAdhocModeToo) {
  const FgsConfig cfg;
  ChannelTrace tb{Rng(11)};
  ChannelTrace ta{Rng(11)};
  std::vector<holms::dvfs::Processor> blind(4, make_cpu());
  std::vector<holms::dvfs::Processor> adaptive(4, make_cpu());
  const AdhocReport rb =
      run_fgs_adhoc(FgsPolicy::kNonAdaptive, cfg, blind, tb, 1500);
  const AdhocReport ra =
      run_fgs_adhoc(FgsPolicy::kClientFeedback, cfg, adaptive, ta, 1500);
  EXPECT_LT(ra.total_client_energy_j, rb.total_client_energy_j);
  EXPECT_GT(ra.mean_psnr_db, rb.mean_psnr_db - 0.5);
}

TEST(FgsAdhoc, ClientsAreStatisticallySimilar) {
  const FgsConfig cfg;
  ChannelTrace tr{Rng(12)};
  std::vector<holms::dvfs::Processor> cpus(3, make_cpu());
  const AdhocReport r =
      run_fgs_adhoc(FgsPolicy::kClientFeedback, cfg, cpus, tr, 1500);
  // All clients see the same share sequence -> identical reports.
  for (std::size_t c = 1; c < r.per_client.size(); ++c) {
    EXPECT_NEAR(r.per_client[c].mean_psnr_db, r.per_client[0].mean_psnr_db,
                1e-9);
  }
}

TEST(FgsAdhoc, EmptyClientListIsWellDefined) {
  const FgsConfig cfg;
  ChannelTrace tr{Rng(13)};
  std::vector<holms::dvfs::Processor> none;
  const AdhocReport r =
      run_fgs_adhoc(FgsPolicy::kClientFeedback, cfg, none, tr, 100);
  EXPECT_TRUE(r.per_client.empty());
  EXPECT_DOUBLE_EQ(r.total_client_energy_j, 0.0);
}

TEST(Fgs, ZeroSlotsIsWellDefined) {
  Processor cpu = make_cpu();
  ChannelTrace tr(Rng(8));
  const FgsReport r =
      run_fgs_session(FgsPolicy::kClientFeedback, default_cfg(), cpu, tr, 0);
  EXPECT_EQ(r.slots, 0u);
  EXPECT_DOUBLE_EQ(r.client_total_energy_j, 0.0);
}

}  // namespace
