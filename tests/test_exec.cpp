// Tests for the holms::exec layer: deterministic thread pool, counter-based
// RNG streams, metrics registry — and the two contracts the parallel
// explorer refactor must keep: thread-count invariance and cache
// transparency (ISSUE 1 acceptance criteria).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "exec/metrics.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"
#include "noc/taskgraph.hpp"

namespace {

using holms::sim::Rng;
using namespace holms::core;
using namespace holms::exec;

// ---------- thread pool ----------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: inline, single thread
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Pool must still be usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(ThreadPool, ParallelTransformPreservesIndexOrder) {
  ThreadPool pool(8);
  const auto out = parallel_transform<std::size_t>(
      &pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ResolveThreadsZeroMeansHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
}

// ---------- counter-based RNG streams ----------

TEST(RngStream, DeterministicAndDistinct) {
  EXPECT_EQ(stream_seed(42, 7), stream_seed(42, 7));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(stream_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across indices
  EXPECT_NE(stream_seed(1, 0), stream_seed(2, 0));  // base matters
}

TEST(RngStream, SubstreamSeedIsNestedStreamSeed) {
  // The hierarchical derivation the island explorer relies on: substreams
  // are exactly nested stream_seed calls, so (base, island, epoch, slot)
  // addresses one stream no matter who re-derives it (e.g. after a resume).
  EXPECT_EQ(substream_seed(42, 3, 9), stream_seed(stream_seed(42, 3), 9));
  EXPECT_EQ(substream_seed(42, 3, 9, 2),
            stream_seed(substream_seed(42, 3, 9), 2));
}

TEST(RngStream, SubstreamsDistinctAcrossAxes) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 8; ++i) {
    for (std::uint64_t e = 0; e < 8; ++e) {
      for (std::uint64_t s = 0; s < 8; ++s) {
        seeds.insert(substream_seed(42, i, e, s));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 8u * 8u);  // no collisions across the lattice
  // Swapping axes addresses different streams.
  EXPECT_NE(substream_seed(42, 1, 2, 3), substream_seed(42, 3, 2, 1));
  EXPECT_NE(substream_seed(42, 1, 2), substream_seed(42, 2, 1));
}

// ---------- explorer determinism (acceptance criterion) ----------

Application exploration_app(std::uint64_t seed, std::size_t tasks) {
  Application app;
  Rng rng(seed);
  app.graph = holms::noc::random_graph(tasks, rng, 5e5);
  app.qos.period_s = 0.05;
  return app;
}

void expect_identical(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.found_feasible, b.found_feasible);
  EXPECT_EQ(a.evaluated, b.evaluated);
  // Bitwise double comparison is deliberate: the parallel path must produce
  // the exact serial result, not merely a close one.
  EXPECT_EQ(a.best.eval.total_energy_j, b.best.eval.total_energy_j);
  EXPECT_EQ(a.best.eval.schedule.makespan_s, b.best.eval.schedule.makespan_s);
  EXPECT_EQ(a.best.mapping, b.best.mapping);
  EXPECT_EQ(a.best.use_dvs, b.best.use_dvs);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].mapping, b.pareto[i].mapping);
    EXPECT_EQ(a.pareto[i].use_dvs, b.pareto[i].use_dvs);
    EXPECT_EQ(a.pareto[i].eval.total_energy_j,
              b.pareto[i].eval.total_energy_j);
    EXPECT_EQ(a.pareto[i].eval.schedule.makespan_s,
              b.pareto[i].eval.schedule.makespan_s);
  }
}

TEST(ExplorerDeterminism, OneThreadAndEightThreadsBitwiseIdentical) {
  const Application app = exploration_app(3, 12);
  const Platform plat = Platform::homogeneous(4, 4);
  ExploreOptions opts;
  opts.restarts = 2;
  opts.sa.iterations = 2000;

  opts.threads = 1;
  Rng r1(5);
  const ExploreResult serial = explore(app, plat, r1, opts);
  ASSERT_TRUE(serial.found_feasible);

  opts.threads = 8;
  Rng r8(5);
  const ExploreResult parallel = explore(app, plat, r8, opts);

  expect_identical(serial, parallel);
  // The caller's RNG must also be left in the same state (exactly one draw).
  EXPECT_EQ(r1.bits(), r8.bits());
}

TEST(ExplorerDeterminism, SynthesisThreadCountInvariant) {
  const Application app = exploration_app(7, 10);
  SynthesisOptions opts;
  opts.explore.restarts = 1;
  opts.explore.sa.iterations = 800;
  opts.cost_budget = 30.0;

  opts.threads = 1;
  Rng r1(21);
  const SynthesisResult serial = synthesize_platform(app, 4, 4, r1, opts);

  opts.threads = 8;
  Rng r8(21);
  const SynthesisResult parallel = synthesize_platform(app, 4, 4, r8, opts);

  EXPECT_EQ(serial.found_feasible, parallel.found_feasible);
  ASSERT_EQ(serial.trace.size(), parallel.trace.size());
  for (std::size_t i = 0; i < serial.trace.size(); ++i) {
    EXPECT_EQ(serial.trace[i].tile, parallel.trace[i].tile);
    EXPECT_EQ(serial.trace[i].to, parallel.trace[i].to);
    EXPECT_EQ(serial.trace[i].energy_j, parallel.trace[i].energy_j);
  }
  expect_identical(serial.design, parallel.design);
}

TEST(ExplorerDeterminism, EvaluationCacheNeverChangesResults) {
  const Application app = exploration_app(11, 12);
  const Platform plat = Platform::homogeneous(4, 4);
  ExploreOptions opts;
  opts.restarts = 2;
  opts.sa.iterations = 1500;

  opts.use_cache = false;
  Rng cold_rng(9);
  const ExploreResult cold = explore(app, plat, cold_rng, opts);

  opts.use_cache = true;
  EvalCache cache;
  opts.cache = &cache;
  Rng warm_rng(9);
  const ExploreResult warm1 = explore(app, plat, warm_rng, opts);
  Rng warm_rng2(9);
  const ExploreResult warm2 = explore(app, plat, warm_rng2, opts);

  expect_identical(cold, warm1);
  expect_identical(cold, warm2);       // fully-cached re-run: same answer
  EXPECT_GT(cache.hits(), 0u);         // second run hit the cache
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), cache.misses());
}

TEST(EvalCache, FingerprintsSeparatePlatformsAndApps) {
  const Platform p1 = Platform::homogeneous(4, 4, gpp_tile());
  Platform p2 = p1;
  p2.tiles[3] = asic_tile();
  EXPECT_NE(platform_fingerprint(p1), platform_fingerprint(p2));
  EXPECT_EQ(platform_fingerprint(p1), platform_fingerprint(p1));

  const Application a1 = exploration_app(1, 8);
  Application a2 = a1;
  a2.qos.period_s *= 2.0;
  EXPECT_NE(app_fingerprint(a1), app_fingerprint(a2));
}

// ---------- metrics ----------

TEST(Metrics, NoSinkMeansNoop) {
  MetricsRegistry::set_global(nullptr);
  count("should.not.crash");
  observe("nor.this", 1.0);
  { ScopedTimer t("nor.timers"); }
  SUCCEED();
}

TEST(Metrics, CountersAndHistogramsAggregate) {
  MetricsRegistry reg;
  ScopedMetricsSink sink(reg);
  count("widgets", 3);
  count("widgets", 2);
  observe("latency", 0.5);
  observe("latency", 1.5);
  EXPECT_EQ(reg.counter("widgets").value(), 5u);
  EXPECT_EQ(reg.histogram("latency").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histogram("latency").sum(), 2.0);
  EXPECT_DOUBLE_EQ(reg.histogram("latency").min(), 0.5);
  EXPECT_DOUBLE_EQ(reg.histogram("latency").max(), 1.5);

  const std::string json = reg.dump_json();
  EXPECT_NE(json.find("\"widgets\":5"), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\":1"), std::string::npos);
}

TEST(Metrics, ScopedSinkRestoresPrevious) {
  MetricsRegistry outer;
  ScopedMetricsSink outer_sink(outer);
  {
    MetricsRegistry inner;
    ScopedMetricsSink inner_sink(inner);
    count("x");
    EXPECT_EQ(inner.counter("x").value(), 1u);
  }
  count("x");
  EXPECT_EQ(outer.counter("x").value(), 1u);
}

TEST(Metrics, ThreadSafeUnderPoolLoad) {
  MetricsRegistry reg;
  ScopedMetricsSink sink(reg);
  ThreadPool pool(8);
  pool.parallel_for(2000, [&](std::size_t i) {
    count("pool.events");
    observe("pool.index", static_cast<double>(i));
  });
  EXPECT_EQ(reg.counter("pool.events").value(), 2000u);
  EXPECT_EQ(reg.histogram("pool.index").count(), 2000u);
  EXPECT_DOUBLE_EQ(reg.histogram("pool.index").max(), 1999.0);
}

TEST(Metrics, ExplorerReportsCandidatesAndCacheTraffic) {
  MetricsRegistry reg;
  ScopedMetricsSink sink(reg);
  const Application app = exploration_app(2, 8);
  const Platform plat = Platform::homogeneous(3, 3);
  Rng rng(4);
  ExploreOptions opts;
  opts.restarts = 1;
  opts.sa.iterations = 500;
  const ExploreResult res = explore(app, plat, rng, opts);
  EXPECT_EQ(reg.counter("explore.candidates").value(), res.evaluated);
  EXPECT_EQ(reg.counter("explore.restarts").value(), 1u);
  EXPECT_GT(reg.counter("explore.cache_misses").value(), 0u);
  EXPECT_GT(reg.counter("sa.moves_accepted").value() +
                reg.counter("sa.moves_rejected").value(),
            0u);
  EXPECT_EQ(reg.histogram("explore.seconds").count(), 1u);
}

}  // namespace
