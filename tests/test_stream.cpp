// Unit tests for the stream substrate: channel automaton, process network,
// end-to-end stream, MPEG-2 decoder (holms::stream) — paper §2.1, Fig.1.
#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "stream/channel.hpp"
#include "stream/kpn.hpp"
#include "stream/lipsync.hpp"
#include "stream/mpeg2.hpp"
#include "stream/stream_system.hpp"
#include "traffic/sources.hpp"

namespace {

using holms::sim::Rng;
using holms::sim::Simulator;
using namespace holms::stream;

// ---------- error models ----------

TEST(IidError, EmpiricalRateMatches) {
  IidErrorModel m(0.2, Rng(1));
  int bad = 0;
  for (int i = 0; i < 100000; ++i) bad += m.corrupts(i * 0.01) ? 1 : 0;
  EXPECT_NEAR(bad / 100000.0, 0.2, 0.01);
  EXPECT_DOUBLE_EQ(m.mean_error_rate(), 0.2);
}

TEST(IidError, RejectsOutOfRange) {
  EXPECT_THROW(IidErrorModel(1.5, Rng(1)), std::invalid_argument);
}

TEST(GilbertElliott, StationaryErrorRate) {
  GilbertElliottModel::Params p;
  p.per_good = 0.01;
  p.per_bad = 0.5;
  p.rate_g2b = 1.0;
  p.rate_b2g = 3.0;
  GilbertElliottModel m(p, Rng(2));
  // P(bad) = 0.25 -> mean per = 0.25*0.5 + 0.75*0.01 = 0.1325.
  EXPECT_NEAR(m.mean_error_rate(), 0.1325, 1e-12);
  int bad = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) bad += m.corrupts(i * 0.01) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(bad) / n, 0.1325, 0.01);
}

TEST(GilbertElliott, ErrorsAreBursty) {
  GilbertElliottModel::Params p;
  p.per_good = 0.0;
  p.per_bad = 1.0;
  p.rate_g2b = 0.5;
  p.rate_b2g = 2.0;
  GilbertElliottModel m(p, Rng(3));
  // Consecutive-error correlation: P(err_{i+1} | err_i) >> P(err).
  int errors = 0, pairs = 0, both = 0;
  bool prev = false;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool e = m.corrupts(i * 0.01);
    errors += e ? 1 : 0;
    if (i > 0) {
      ++pairs;
      if (e && prev) ++both;
    }
    prev = e;
  }
  const double p_err = static_cast<double>(errors) / n;
  const double p_cond = static_cast<double>(both) /
                        (static_cast<double>(errors) + 1.0);
  EXPECT_GT(p_cond, 2.0 * p_err);
}

TEST(LinkRate, TransmissionTime) {
  LinkRate l{1e6, 1e-3};
  EXPECT_NEAR(l.transmission_time(8000.0), 0.009, 1e-12);
}

// ---------- end-to-end stream (Fig.1a) ----------

StreamConfig tight_config() {
  StreamConfig cfg;
  cfg.packet_size_bits = 8000.0;
  cfg.link.bits_per_second = 10e6;
  cfg.link.propagation_delay = 1e-4;
  return cfg;
}

TEST(StreamSystem, LosslessChannelDeliversEverything) {
  holms::traffic::CbrSource src(100.0);  // well below link capacity
  IidErrorModel err(0.0, Rng(4));
  const StreamQos q = run_stream(src, err, tight_config(), 50.0);
  EXPECT_GT(q.offered, 4900u);
  EXPECT_EQ(q.lost_channel, 0u);
  EXPECT_EQ(q.lost_tx_overflow, 0u);
  EXPECT_NEAR(q.loss_rate, 0.0, 1e-3);
  EXPECT_GT(q.mean_latency, 0.0);
}

TEST(StreamSystem, LossGrowsWithChannelErrorRate) {
  holms::traffic::CbrSource src1(100.0), src2(100.0);
  IidErrorModel low(0.02, Rng(5)), high(0.3, Rng(5));
  const StreamQos ql = run_stream(src1, low, tight_config(), 50.0);
  const StreamQos qh = run_stream(src2, high, tight_config(), 50.0);
  EXPECT_NEAR(ql.loss_rate, 0.02, 0.01);
  EXPECT_NEAR(qh.loss_rate, 0.3, 0.03);
}

TEST(StreamSystem, ArqTradesLatencyAndEnergyForLoss) {
  StreamConfig base = tight_config();
  StreamConfig arq = base;
  arq.arq_max_retransmissions = 4;
  holms::traffic::CbrSource s1(100.0), s2(100.0);
  IidErrorModel e1(0.2, Rng(6)), e2(0.2, Rng(6));
  const StreamQos q0 = run_stream(s1, e1, base, 50.0);
  const StreamQos q1 = run_stream(s2, e2, arq, 50.0);
  // ARQ slashes loss (0.2^5 residual)...
  EXPECT_LT(q1.loss_rate, 0.01);
  EXPECT_GT(q0.loss_rate, 0.15);
  // ...but pays in retransmission energy and latency.
  EXPECT_GT(q1.retransmissions, 0u);
  EXPECT_GT(q1.tx_energy_joules, q0.tx_energy_joules);
  EXPECT_GT(q1.mean_latency, q0.mean_latency);
}

TEST(StreamSystem, TxOverflowWhenSourceExceedsLink) {
  StreamConfig cfg = tight_config();
  cfg.link.bits_per_second = 0.5e6;  // 62.5 pkts/s max
  cfg.tx_capacity = 4;
  holms::traffic::CbrSource src(200.0);
  IidErrorModel err(0.0, Rng(7));
  const StreamQos q = run_stream(src, err, cfg, 20.0);
  EXPECT_GT(q.lost_tx_overflow, 0u);
  EXPECT_GT(q.mean_tx_occupancy, 2.0);  // buffer rides full
  EXPECT_NEAR(q.throughput, 62.5, 3.0);
}

TEST(StreamSystem, RxOverflowWhenSinkTooSlow) {
  StreamConfig cfg = tight_config();
  cfg.sink_service_time = 0.02;  // 50 pkts/s sink
  cfg.rx_capacity = 4;
  holms::traffic::CbrSource src(100.0);
  IidErrorModel err(0.0, Rng(8));
  const StreamQos q = run_stream(src, err, cfg, 20.0);
  EXPECT_GT(q.lost_rx_overflow, 0u);
  EXPECT_NEAR(q.throughput, 50.0, 3.0);
}

TEST(StreamSystem, JitterLowerOnCleanCbrThanLossyChannel) {
  StreamConfig cfg = tight_config();
  holms::traffic::CbrSource s1(100.0), s2(100.0);
  IidErrorModel clean(0.0, Rng(9)), dirty(0.3, Rng(9));
  StreamConfig arq = cfg;
  arq.arq_max_retransmissions = 3;
  const StreamQos q0 = run_stream(s1, clean, cfg, 30.0);
  const StreamQos q1 = run_stream(s2, dirty, arq, 30.0);
  EXPECT_LT(q0.jitter, q1.jitter);
}

// ---------- system-level stream tuning (§2.1 [6]) ----------

TEST(TuneStream, CleanChannelPicksHighestRateWithoutArq) {
  GilbertElliottModel::Params clean;
  clean.per_good = 0.0;
  clean.per_bad = 0.0;
  StreamTuningOptions opts;
  opts.sim_duration = 20.0;
  const auto r = tune_stream(tight_config(), clean, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.source_rate, opts.source_rates.back());
  EXPECT_EQ(r.arq_budget, 0u);
  EXPECT_EQ(r.evaluated,
            opts.source_rates.size() * opts.arq_budgets.size());
}

TEST(TuneStream, BurstyChannelNeedsRetransmissionBudget) {
  GilbertElliottModel::Params bursty;
  bursty.per_good = 0.02;
  bursty.per_bad = 0.5;
  bursty.rate_g2b = 0.5;
  bursty.rate_b2g = 2.0;
  StreamTuningOptions opts;
  opts.sim_duration = 40.0;
  opts.max_loss_rate = 0.01;
  const auto r = tune_stream(tight_config(), bursty, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.arq_budget, 0u);  // loss cap unreachable without ARQ
  EXPECT_LE(r.qos.loss_rate, opts.max_loss_rate);
}

TEST(TuneStream, EnergyBudgetForcesLowerRate) {
  GilbertElliottModel::Params clean;
  clean.per_good = 0.0;
  clean.per_bad = 0.0;
  StreamTuningOptions generous, tight;
  generous.sim_duration = tight.sim_duration = 20.0;
  // CBR r pkts/s * 8000 bits * 50 nJ/bit = r * 4e-4 J/s.
  tight.energy_budget_j_per_s = 60.0 * 8000.0 * 50e-9 * 1.05;
  const auto r1 = tune_stream(tight_config(), clean, generous);
  const auto r2 = tune_stream(tight_config(), clean, tight);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_LT(r2.source_rate, r1.source_rate);
}

TEST(TuneStream, ImpossibleQosIsReportedInfeasible) {
  GilbertElliottModel::Params awful;
  awful.per_good = 0.6;
  awful.per_bad = 0.9;
  StreamTuningOptions opts;
  opts.sim_duration = 10.0;
  opts.max_loss_rate = 1e-6;
  opts.arq_budgets = {0};  // no ARQ allowed
  const auto r = tune_stream(tight_config(), awful, opts);
  EXPECT_FALSE(r.feasible);
}

// ---------- process network (KPN engine) ----------

TEST(ProcessNetwork, TandemPipelineConservesTokens) {
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  int produced = 0;
  const auto src = net.add_source(
      "src", [] { return 0.01; },
      [&produced](std::uint64_t id) {
        ++produced;
        Token t;
        t.id = id;
        t.work = 1.0;
        return t;
      });
  NodeSpec w;
  w.name = "stage";
  w.cpu = cpu;
  w.service_time = [](const Token&) { return 0.002; };
  const auto stage = net.add_worker(std::move(w));
  const auto sink = net.add_sink("sink");
  net.connect(src, stage, 8);
  net.connect(stage, sink, 8);
  net.start();
  sim.run(10.0);
  net.finish();
  EXPECT_GT(net.tokens_delivered(), 900u);
  EXPECT_EQ(net.node_stats(stage).firings, net.tokens_delivered());
  EXPECT_EQ(net.node_stats(src).drops +
                net.node_stats(src).firings,
            static_cast<std::uint64_t>(produced));
}

TEST(ProcessNetwork, SlowStageBackpressuresAndDropsAtSource) {
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  const auto src = net.add_source(
      "src", [] { return 0.01; },
      [](std::uint64_t id) {
        Token t;
        t.id = id;
        return t;
      });
  NodeSpec w;
  w.name = "slow";
  w.cpu = cpu;
  w.service_time = [](const Token&) { return 0.05; };  // 20/s vs 100/s in
  const auto stage = net.add_worker(std::move(w));
  const auto sink = net.add_sink("sink");
  const auto in_edge = net.connect(src, stage, 4);
  net.connect(stage, sink, 4);
  net.start();
  sim.run(20.0);
  net.finish();
  EXPECT_GT(net.node_stats(src).drops, 0u);
  EXPECT_NEAR(net.buffer(in_edge).occupancy().mean(), 4.0, 0.5);
  EXPECT_NEAR(static_cast<double>(net.tokens_delivered()) / 20.0, 20.0, 2.0);
}

TEST(ProcessNetwork, SharedCpuSerializesStages) {
  // Two stages on one CPU: utilization sums; on two CPUs they overlap.
  auto build_and_run = [](bool two_cpus) {
    Simulator sim;
    ProcessNetwork net(sim);
    const auto cpu0 = net.add_cpu();
    const auto cpu1 = two_cpus ? net.add_cpu() : cpu0;
    const auto src = net.add_source(
        "src", [] { return 0.01; },
        [](std::uint64_t id) {
          Token t;
          t.id = id;
          return t;
        });
    NodeSpec a;
    a.name = "a";
    a.cpu = cpu0;
    a.service_time = [](const Token&) { return 0.004; };
    NodeSpec b;
    b.name = "b";
    b.cpu = cpu1;
    b.service_time = [](const Token&) { return 0.004; };
    const auto na = net.add_worker(std::move(a));
    const auto nb = net.add_worker(std::move(b));
    const auto sink = net.add_sink("sink");
    net.connect(src, na, 8);
    net.connect(na, nb, 8);
    net.connect(nb, sink, 8);
    net.start();
    sim.run(10.0);
    net.finish();
    return net.tokens_delivered();
  };
  const auto one = build_and_run(false);
  const auto two = build_and_run(true);
  // One CPU handles 0.008s of work per token @0.01 arrival — still keeps up,
  // so throughputs are similar; the point is both run deadlock-free.
  EXPECT_GT(one, 900u);
  EXPECT_GE(two, one);
}

TEST(ProcessNetwork, RejectsInvalidConstruction) {
  Simulator sim;
  ProcessNetwork net(sim);
  NodeSpec w;
  w.name = "bad";
  EXPECT_THROW(net.add_worker(std::move(w)), std::invalid_argument);  // no fn
  const auto src = net.add_source(
      "s", [] { return 1.0; },
      [](std::uint64_t) { return Token{}; });
  const auto sink = net.add_sink("k");
  EXPECT_THROW(net.connect(src, sink, 0), std::invalid_argument);
}

// ---------- MPEG-2 decoder (Fig.1b) ----------

holms::traffic::VideoTraceGenerator::Params small_video() {
  holms::traffic::VideoTraceGenerator::Params p;
  p.mean_bitrate = 2e6;
  p.frame_rate = 30.0;
  p.scene_strength = 0.0;
  return p;
}

TEST(Mpeg2, FastCpuDecodesEveryFrame) {
  holms::traffic::VideoTraceGenerator video(small_video(), Rng(10));
  Mpeg2Config cfg;
  cfg.cpu_frequency_hz = 1200e6;  // ample headroom
  const Mpeg2Report r = run_mpeg2_decoder(video, 300, cfg);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_EQ(r.frames_out, 300u);
  EXPECT_NEAR(r.fps_out, 30.0, 3.0);
  EXPECT_GT(r.cpu0_utilization, 0.05);
  EXPECT_LE(r.cpu0_utilization, 1.0);
}

TEST(Mpeg2, SlowCpuDropsFramesAtReceiver) {
  holms::traffic::VideoTraceGenerator video(small_video(), Rng(11));
  Mpeg2Config cfg;
  cfg.cpu_frequency_hz = 120e6;  // ~2x underprovisioned
  const Mpeg2Report r = run_mpeg2_decoder(video, 300, cfg, 1.0);
  EXPECT_GT(r.frames_dropped, 30u);
  EXPECT_GT(r.cpu0_utilization, 0.95);
}

TEST(Mpeg2, SecondCpuRaisesThroughput) {
  holms::traffic::VideoTraceGenerator v1(small_video(), Rng(12));
  holms::traffic::VideoTraceGenerator v2(small_video(), Rng(12));
  Mpeg2Config one;
  one.cpu_frequency_hz = 200e6;
  Mpeg2Config two = one;
  two.two_cpus = true;
  const Mpeg2Report r1 = run_mpeg2_decoder(v1, 300, one, 1.0);
  const Mpeg2Report r2 = run_mpeg2_decoder(v2, 300, two, 1.0);
  EXPECT_GT(r2.frames_out, r1.frames_out);
  EXPECT_GT(r2.cpu1_utilization, 0.0);
}

TEST(Mpeg2, BufferOccupancyReflectsUtilization) {
  // The paper: "The average length of these buffers is very important as it
  // reflects their utilization over time."  A slower CPU keeps B2 fuller.
  holms::traffic::VideoTraceGenerator v1(small_video(), Rng(13));
  holms::traffic::VideoTraceGenerator v2(small_video(), Rng(13));
  Mpeg2Config fast;
  fast.cpu_frequency_hz = 1200e6;
  Mpeg2Config slow = fast;
  slow.cpu_frequency_hz = 170e6;
  const Mpeg2Report rf = run_mpeg2_decoder(v1, 300, fast, 1.0);
  const Mpeg2Report rs = run_mpeg2_decoder(v2, 300, slow, 1.0);
  EXPECT_GT(rs.mean_b2, rf.mean_b2);
  EXPECT_GT(rs.mean_frame_latency, rf.mean_frame_latency);
}

// ---------- multi-rate (SDF) dataflow ----------

TEST(Sdf, UpsamplerProducesNTokensPerFiring) {
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  const auto src = net.add_source(
      "src", [] { return 0.01; },
      [](std::uint64_t id) {
        Token t;
        t.id = id;
        return t;
      });
  NodeSpec up;
  up.name = "x3-upsampler";
  up.cpu = cpu;
  up.service_time = [](const Token&) { return 0.001; };
  const auto n = net.add_worker(std::move(up));
  const auto sink = net.add_sink("sink");
  net.connect(src, n, 8);
  net.connect(n, sink, 16, "up-out", /*produce=*/3, /*consume=*/1);
  net.start();
  sim.run(10.0);
  net.finish();
  // ~1000 source tokens -> ~3000 delivered.
  EXPECT_NEAR(static_cast<double>(net.tokens_delivered()),
              3.0 * static_cast<double>(net.node_stats(n).firings), 3.0);
  EXPECT_GT(net.tokens_delivered(), 2900u);
}

TEST(Sdf, DownsamplerConsumesNTokensPerFiring) {
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  const auto src = net.add_source(
      "src", [] { return 0.005; },
      [](std::uint64_t id) {
        Token t;
        t.id = id;
        return t;
      });
  NodeSpec down;
  down.name = "x4-decimator";
  down.cpu = cpu;
  down.service_time = [](const Token&) { return 0.001; };
  down.transform = [](const std::vector<Token>& ins) {
    EXPECT_EQ(ins.size(), 4u);  // the full consumption window arrives
    return ins.front();
  };
  const auto n = net.add_worker(std::move(down));
  const auto sink = net.add_sink("sink");
  net.connect(src, n, 8, "in", /*produce=*/1, /*consume=*/4);
  net.connect(n, sink, 8);
  net.start();
  sim.run(10.0);
  net.finish();
  EXPECT_NEAR(static_cast<double>(net.tokens_delivered()), 2000.0 / 4.0,
              5.0);
}

TEST(Sdf, AvSyncJoinConsumesUnequalRates) {
  // §2.1's temporal relationship: 50 Hz audio + 30 Hz video join at a sync
  // node consuming 5 audio blocks and 3 video frames per firing (10 Hz).
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  auto mk = [](std::uint64_t id) {
    Token t;
    t.id = id;
    return t;
  };
  const auto audio = net.add_source("audio", [] { return 1.0 / 50.0; }, mk);
  const auto video = net.add_source("video", [] { return 1.0 / 30.0; }, mk);
  NodeSpec sync;
  sync.name = "av-sync";
  sync.cpu = cpu;
  sync.service_time = [](const Token&) { return 0.001; };
  const auto n = net.add_worker(std::move(sync));
  const auto sink = net.add_sink("present");
  net.connect(audio, n, 16, "a", 1, 5);
  net.connect(video, n, 16, "v", 1, 3);
  net.connect(n, sink, 8);
  net.start();
  sim.run(30.0);
  net.finish();
  // ~10 firings per second.
  EXPECT_NEAR(static_cast<double>(net.node_stats(n).firings) / 30.0, 10.0,
              1.0);
  EXPECT_EQ(net.node_stats(audio).drops, 0u);
  EXPECT_EQ(net.node_stats(video).drops, 0u);
}

TEST(Sdf, RejectsRatesBeyondCapacity) {
  Simulator sim;
  ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  NodeSpec w;
  w.name = "w";
  w.cpu = cpu;
  w.service_time = [](const Token&) { return 1.0; };
  const auto a = net.add_worker(std::move(w));
  const auto sink = net.add_sink("k");
  EXPECT_THROW(net.connect(a, sink, 4, "bad", 5, 1), std::invalid_argument);
  EXPECT_THROW(net.connect(a, sink, 4, "bad", 0, 1), std::invalid_argument);
  EXPECT_THROW(net.connect(a, sink, 4, "bad", 1, 8), std::invalid_argument);
}

// ---------- lip synchronization (§2.1) ----------

TEST(LipSync, CleanStreamsStayInSync) {
  LipSyncConfig cfg;
  cfg.video.jitter_stddev = 0.002;
  cfg.audio.jitter_stddev = 0.001;
  const LipSyncReport r = run_lipsync(cfg, 120.0, 1);
  EXPECT_GT(r.presented, 3000u);
  EXPECT_GT(r.in_sync_fraction, 0.99);
  EXPECT_EQ(r.resyncs, 0u);
  EXPECT_LT(r.mean_abs_skew, cfg.sync_tolerance);
}

TEST(LipSync, HeavyVideoJitterForcesResyncs) {
  LipSyncConfig cfg;
  cfg.video.jitter_stddev = 0.25;   // pathological network
  cfg.video.loss_prob = 0.05;
  cfg.playout_offset = 0.10;        // too small for this jitter
  const LipSyncReport r = run_lipsync(cfg, 120.0, 2);
  EXPECT_GT(r.video_late + r.resyncs, 20u);
  EXPECT_LT(r.in_sync_fraction, 0.995);
}

TEST(LipSync, LargerPlayoutOffsetAbsorbsJitter) {
  LipSyncConfig small, large;
  small.video.jitter_stddev = large.video.jitter_stddev = 0.05;
  small.playout_offset = 0.10;
  large.playout_offset = 0.40;
  const LipSyncReport rs = run_lipsync(small, 120.0, 3);
  const LipSyncReport rl = run_lipsync(large, 120.0, 3);
  EXPECT_GT(rl.in_sync_fraction, rs.in_sync_fraction - 0.001);
  EXPECT_LE(rl.video_late, rs.video_late);
  // The cost of the deeper playout point: more buffered units.
  EXPECT_GT(rl.mean_video_buffer, rs.mean_video_buffer);
}

TEST(LipSync, AudioLossCreatesGaps) {
  LipSyncConfig cfg;
  cfg.audio.loss_prob = 0.1;
  const LipSyncReport r = run_lipsync(cfg, 60.0, 4);
  EXPECT_GT(r.audio_gaps, 100u);
}

TEST(LipSync, SkewBoundedByToleranceWhenInSync) {
  LipSyncConfig cfg;
  const LipSyncReport r = run_lipsync(cfg, 60.0, 5);
  if (r.resyncs == 0) {
    EXPECT_LE(r.max_abs_skew, cfg.sync_tolerance + 0.05);
  }
}

TEST(Mpeg2, LatencyIncludesAllStages) {
  holms::traffic::VideoTraceGenerator video(small_video(), Rng(14));
  Mpeg2Config cfg;
  cfg.cpu_frequency_hz = 1200e6;
  const Mpeg2Report r = run_mpeg2_decoder(video, 100, cfg);
  // Mean frame = 2e6/30 bits; VLD+max(IDCT,MV) alone at 1.2 GHz.
  const double frame_bits = 2e6 / 30.0;
  const double lower_bound =
      frame_bits * (cfg.vld_cycles_per_bit) / cfg.cpu_frequency_hz;
  EXPECT_GT(r.mean_frame_latency, lower_bound);
}

}  // namespace
