// Cross-layer fault injection tests (holms::fault + consumers).
//
// The contract under test: every simulator driven by a (seed, FaultSchedule)
// pair is bitwise reproducible — same schedule, same numbers — and the
// fault-tolerant mechanisms (kFaultTolerant NoC routing, MANET route repair,
// FGS graceful degradation, robustness-aware explore()) degrade gracefully
// instead of wedging or silently lying.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ambient.hpp"
#include "core/explorer.hpp"
#include "exec/rng_stream.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "manet/routing.hpp"
#include "noc/router.hpp"
#include "streaming/fgs.hpp"

namespace {

using holms::sim::Rng;
using holms::fault::FaultEvent;
using holms::fault::FaultKind;
using holms::fault::FaultSchedule;
using holms::fault::Target;

// ---------- schedule ----------

TEST(FaultSchedule, FromTraceCanonicalisesOrder) {
  const std::vector<FaultEvent> forward = {
      {1.0, FaultKind::kFail, Target::kLink, 3},
      {2.0, FaultKind::kFail, Target::kLink, 1},
      {2.0, FaultKind::kRepair, Target::kLink, 1},
  };
  std::vector<FaultEvent> shuffled = {forward[2], forward[0], forward[1]};
  const auto a = FaultSchedule::from_trace(forward);
  const auto b = FaultSchedule::from_trace(shuffled);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_DOUBLE_EQ(a.events()[0].time, 1.0);
  // Same (time, target, id): kFail sorts before kRepair.
  EXPECT_EQ(a.events()[1].kind, FaultKind::kFail);
  EXPECT_EQ(a.events()[2].kind, FaultKind::kRepair);
}

TEST(FaultSchedule, NegativeTimeThrows) {
  EXPECT_THROW(
      FaultSchedule::from_trace({{-0.5, FaultKind::kFail, Target::kNode, 0}}),
      std::invalid_argument);
}

TEST(FaultSchedule, PoissonIsSeedDeterministic) {
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = 16;
  spec.fail_rate = 1.0 / 50.0;
  spec.repair_rate = 1.0 / 10.0;
  spec.horizon = 1000.0;
  const auto a = FaultSchedule::poisson(42, spec);
  const auto b = FaultSchedule::poisson(42, spec);
  const auto c = FaultSchedule::poisson(43, spec);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
}

TEST(FaultSchedule, PoissonTargetStreamsAreIndependent) {
  // Counter-based per-target streams: widening the target set never perturbs
  // the events of the targets already present.
  FaultSchedule::PoissonSpec narrow;
  narrow.target = Target::kTile;
  narrow.num_targets = 4;
  narrow.fail_rate = 0.01;
  narrow.repair_rate = 0.05;
  narrow.horizon = 2000.0;
  FaultSchedule::PoissonSpec wide = narrow;
  wide.num_targets = 9;
  const auto a = FaultSchedule::poisson(7, narrow);
  const auto b = FaultSchedule::poisson(7, wide);
  std::vector<FaultEvent> b_low;
  for (const auto& e : b.events()) {
    if (e.id < narrow.num_targets) b_low.push_back(e);
  }
  ASSERT_EQ(a.size(), b_low.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b_low[i].time);
    EXPECT_EQ(a.events()[i].id, b_low[i].id);
    EXPECT_EQ(a.events()[i].kind, b_low[i].kind);
  }
}

TEST(FaultSchedule, PoissonValidatesSpec) {
  FaultSchedule::PoissonSpec spec;
  spec.num_targets = 2;
  spec.horizon = 10.0;
  spec.fail_rate = 0.0;  // must be > 0
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
  spec.fail_rate = 0.1;
  spec.repair_rate = -1.0;
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
  spec.repair_rate = 0.0;
  spec.horizon = -5.0;
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
}

TEST(FaultSchedule, MergeIsCanonical) {
  const auto a = FaultSchedule::from_trace(
      {{5.0, FaultKind::kFail, Target::kLink, 0}});
  const auto b = FaultSchedule::from_trace(
      {{1.0, FaultKind::kFail, Target::kNode, 2}});
  const auto m = FaultSchedule::merge(a, b);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.events()[0].time, 1.0);
  EXPECT_EQ(FaultSchedule::merge(a, b).fingerprint(),
            FaultSchedule::merge(b, a).fingerprint());
}

TEST(FaultInjector, PollAppliesEventsUpToNow) {
  const auto s = FaultSchedule::from_trace({
      {1.0, FaultKind::kFail, Target::kNode, 0},
      {2.0, FaultKind::kFail, Target::kNode, 1},
      {3.0, FaultKind::kRepair, Target::kNode, 0},
  });
  holms::fault::FaultInjector inj(&s);
  EXPECT_TRUE(inj.armed());
  std::size_t applied = 0;
  EXPECT_EQ(inj.poll(0.5, [&](const FaultEvent&) { ++applied; }), 0u);
  EXPECT_EQ(inj.poll(2.0, [&](const FaultEvent&) { ++applied; }), 2u);
  EXPECT_FALSE(inj.exhausted());
  EXPECT_EQ(inj.poll(100.0, [&](const FaultEvent&) { ++applied; }), 1u);
  EXPECT_EQ(applied, 3u);
  EXPECT_TRUE(inj.exhausted());
}

// ---------- NoC ----------

holms::noc::NocSim::Config noc_cfg(holms::noc::RoutingAlgo algo) {
  holms::noc::NocSim::Config cfg;
  cfg.virtual_channels = 2;
  cfg.routing = algo;
  return cfg;
}

holms::noc::NocStats run_noc(const holms::noc::Mesh2D& mesh,
                             holms::noc::RoutingAlgo algo,
                             const FaultSchedule* schedule,
                             std::uint64_t cycles = 8000) {
  holms::noc::NocSim sim(mesh, noc_cfg(algo), Rng(99));
  add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                    0.02, 4);
  if (schedule != nullptr) sim.attach_fault_schedule(schedule);
  sim.run(cycles);
  return sim.stats();
}

TEST(NocFault, SameScheduleSameSeedBitwiseIdentical) {
  const holms::noc::Mesh2D mesh(6, 6);
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = mesh.num_undirected_links();
  spec.fail_rate = 1.0 / 4000.0;   // per-link, per-cycle
  spec.repair_rate = 1.0 / 1500.0;
  spec.horizon = 8000.0;
  const auto sched = FaultSchedule::poisson(21, spec);
  ASSERT_FALSE(sched.empty());
  const auto a =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &sched);
  const auto b =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &sched);
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_DOUBLE_EQ(a.mean_packet_latency, b.mean_packet_latency);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

TEST(NocFault, OnDemandFtTablesRouteIdenticallyToPrecomputed) {
  // The on-demand reverse-BFS + LRU path (meshes >= ft_on_demand_min_tiles)
  // must reproduce the precomputed-table routes exactly: force it on at 8x8
  // and compare every stats field bitwise against the default table mode,
  // under a fault schedule that crosses several epochs.
  const holms::noc::Mesh2D mesh(8, 8);
  std::vector<FaultEvent> trace;
  for (std::size_t i = 0; i < mesh.num_undirected_links(); i += 20) {
    trace.push_back({2000.0, FaultKind::kFail, Target::kLink, i});
    trace.push_back({5000.0, FaultKind::kRepair, Target::kLink, i});
  }
  trace.push_back({3000.0, FaultKind::kFail, Target::kNode, 27});
  const auto sched = FaultSchedule::from_trace(trace);

  auto run = [&](std::size_t min_tiles) {
    auto cfg = noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant);
    cfg.ft_on_demand_min_tiles = min_tiles;
    holms::noc::NocSim sim(mesh, cfg, Rng(99));
    add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                      0.02, 4);
    sim.attach_fault_schedule(&sched);
    sim.run(8000);
    return sim.stats();
  };
  const auto table = run(1024);   // default: 64 tiles < 1024 -> full table
  const auto lazy = run(1);       // forced on-demand + LRU
  EXPECT_GT(table.faults_applied, 0u);
  EXPECT_EQ(table.packets_injected, lazy.packets_injected);
  EXPECT_EQ(table.packets_delivered, lazy.packets_delivered);
  EXPECT_EQ(table.packets_dropped, lazy.packets_dropped);
  EXPECT_EQ(table.flit_hops, lazy.flit_hops);
  EXPECT_EQ(table.reroute_hops, lazy.reroute_hops);
  EXPECT_EQ(table.faults_applied, lazy.faults_applied);
  EXPECT_DOUBLE_EQ(table.mean_packet_latency, lazy.mean_packet_latency);
  EXPECT_DOUBLE_EQ(table.p99_packet_latency, lazy.p99_packet_latency);
  EXPECT_DOUBLE_EQ(table.energy_joules, lazy.energy_joules);
  EXPECT_DOUBLE_EQ(table.delivery_ratio, lazy.delivery_ratio);
}

TEST(NocFault, FaultTolerantSustainsDeliveryWhereXyBlackholes) {
  // Acceptance scenario: 8x8 mesh, ~5% of links fail mid-run and stay dead.
  const holms::noc::Mesh2D mesh(8, 8);
  std::vector<FaultEvent> trace;
  const std::size_t num_links = mesh.num_undirected_links();  // 112
  for (std::size_t i = 0; i < num_links; i += 20) {           // 6 links ~ 5.4%
    trace.push_back({2000.0, FaultKind::kFail, Target::kLink, i});
  }
  const auto sched = FaultSchedule::from_trace(trace);

  const auto ft = run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant,
                          &sched, 12000);
  const auto xy = run_noc(mesh, holms::noc::RoutingAlgo::kXY, &sched, 12000);

  EXPECT_GE(ft.delivery_ratio, 0.95);
  EXPECT_GT(ft.reroute_hops, 0u);  // detours actually taken
  // XY keeps steering worms into the dead links: deliveries collapse and the
  // stall-drop valve converts the blackholed heads into counted drops.
  EXPECT_LT(xy.delivery_ratio, 0.6);
  EXPECT_GT(xy.packets_dropped, 100u);
  EXPECT_GT(ft.delivery_ratio, xy.delivery_ratio + 0.3);
}

TEST(NocFault, FaultTolerantWithoutFaultsBehavesLikeBaseline) {
  const holms::noc::Mesh2D mesh(4, 4);
  const auto ft =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, nullptr, 4000);
  const auto xy = run_noc(mesh, holms::noc::RoutingAlgo::kXY, nullptr, 4000);
  EXPECT_EQ(ft.packets_dropped, 0u);
  EXPECT_EQ(xy.packets_dropped, 0u);
  EXPECT_GE(ft.delivery_ratio, 0.95);
  EXPECT_GE(xy.delivery_ratio, 0.95);
  EXPECT_EQ(ft.faults_applied, 0u);
}

TEST(NocFault, ManualLinkControlTogglesAndRepairs) {
  const holms::noc::Mesh2D mesh(3, 3);
  holms::noc::NocSim sim(mesh, noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant),
                         Rng(5));
  EXPECT_TRUE(sim.link_up(0, holms::noc::Dir::kEast));
  sim.set_link_up(0, holms::noc::Dir::kEast, false);
  EXPECT_FALSE(sim.link_up(0, holms::noc::Dir::kEast));
  // The reverse directed channel dies with it.
  EXPECT_FALSE(sim.link_up(1, holms::noc::Dir::kWest));
  sim.set_link_up(0, holms::noc::Dir::kEast, true);
  EXPECT_TRUE(sim.link_up(0, holms::noc::Dir::kEast));
  sim.set_router_up(4, false);
  EXPECT_FALSE(sim.router_up(4));
  sim.set_router_up(4, true);
  EXPECT_TRUE(sim.router_up(4));
}

TEST(NocFault, DeadRouterTrafficIsDroppedNotWedged) {
  const holms::noc::Mesh2D mesh(4, 4);
  holms::noc::NocSim sim(mesh, noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant),
                         Rng(11));
  holms::noc::Flow f;
  f.src = 0;
  f.dst = 15;
  f.packets_per_cycle = 0.05;
  f.packet_flits = 4;
  sim.add_flow(f);
  sim.set_router_up(15, false);  // destination gone: nothing is deliverable
  sim.run(4000);
  const auto st = sim.stats();
  EXPECT_GT(st.packets_injected, 0u);
  EXPECT_EQ(st.packets_delivered, 0u);
  EXPECT_GT(st.packets_dropped, 0u);
  EXPECT_DOUBLE_EQ(st.delivery_ratio, 0.0);
}

// ---------- MANET ----------

holms::manet::LifetimeConfig manet_cfg() {
  holms::manet::LifetimeConfig cfg;
  cfg.max_time_s = 800.0;
  cfg.num_flows = 4;
  return cfg;
}

TEST(ManetFault, SameScheduleSameSeedIdenticalCounts) {
  holms::manet::Manet::Params p;
  p.num_nodes = 30;
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kNode;
  spec.num_targets = p.num_nodes;
  spec.fail_rate = 1.0 / 300.0;
  spec.repair_rate = 1.0 / 80.0;
  spec.horizon = 800.0;
  const auto sched = FaultSchedule::poisson(13, spec);
  ASSERT_FALSE(sched.empty());
  const auto a = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  const auto b = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.route_repairs, b.route_repairs);
  EXPECT_EQ(a.repair_failures, b.repair_failures);
  EXPECT_EQ(a.packets_blackholed, b.packets_blackholed);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_DOUBLE_EQ(a.lifetime_s, b.lifetime_s);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

TEST(ManetFault, CrashScheduleTriggersRouteRepair) {
  holms::manet::Manet::Params p;
  p.num_nodes = 30;
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kNode;
  spec.num_targets = p.num_nodes;
  spec.fail_rate = 1.0 / 150.0;  // aggressive crashes
  spec.repair_rate = 1.0 / 60.0;
  spec.horizon = 800.0;
  const auto sched = FaultSchedule::poisson(29, spec);
  const auto faulty = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  const auto clean = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17);
  EXPECT_GT(faulty.faults_applied, 0u);
  EXPECT_GT(faulty.repairs_applied, 0u);
  EXPECT_GT(faulty.route_repairs, 0u);  // on-demand repair actually ran
  EXPECT_LE(faulty.packets_delivered, faulty.packets_sent);
  // Crashes cost deliveries, but repair keeps the session alive.
  EXPECT_LT(faulty.delivery_ratio, clean.delivery_ratio + 1e-9);
  EXPECT_GT(faulty.delivery_ratio, 0.0);
  EXPECT_EQ(clean.faults_applied, 0u);
}

// ---------- FGS streaming ----------

TEST(FgsFault, SlotLossTraceFollowsSchedule) {
  const auto sched = FaultSchedule::from_trace({
      {10.0, FaultKind::kFail, Target::kLink, 0},
      {20.0, FaultKind::kRepair, Target::kLink, 0},
  });
  holms::streaming::SlotLossTrace trace(&sched, 1.0, 0.01, 0.3);
  for (std::size_t s = 0; s < 30; ++s) {
    const double l = trace.loss_for_slot(s);
    if (s >= 10 && s < 20) {
      EXPECT_DOUBLE_EQ(l, 0.3) << "slot " << s;
    } else {
      EXPECT_DOUBLE_EQ(l, 0.01) << "slot " << s;
    }
  }
}

TEST(FgsFault, GracefulDegradationKeepsBaseIntactUnder30PctLoss) {
  // Permanent 30% loss from t=0.  The channel's worst state still carries
  // base/(1-loss) (~366 kbps), so shedding enhancement + FEC margin must keep
  // every slot's base layer decodable: zero misses, PSNR never below base.
  const auto sched = FaultSchedule::from_trace(
      {{0.0, FaultKind::kFail, Target::kLink, 0}});
  holms::streaming::FgsConfig cfg;
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
  holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
  const auto r = holms::streaming::run_fgs_session(
      holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 400,
      &loss);
  EXPECT_EQ(r.base_layer_misses, 0u);
  EXPECT_GE(r.min_psnr_db, cfg.psnr_base_db - 1e-9);
  EXPECT_NEAR(r.mean_loss, 0.3, 1e-9);
  EXPECT_GT(r.mean_enhancement_shed, 0.3);  // ladder actually engaged
}

TEST(FgsFault, GracefulRecoversWhenChannelHeals) {
  // Fault covers the first half of the session; after the repair the shed
  // fraction must decay back toward zero (EWMA-driven recovery).
  holms::streaming::FgsConfig cfg;
  const double half_t = 200 * cfg.slot_s;
  const auto sched = FaultSchedule::from_trace({
      {0.0, FaultKind::kFail, Target::kLink, 0},
      {half_t, FaultKind::kRepair, Target::kLink, 0},
  });
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
  holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
  const auto r = holms::streaming::run_fgs_session(
      holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 400,
      &loss);
  EXPECT_NEAR(r.mean_loss, 0.15, 1e-9);
  // Mean shed over the whole session sits well below the sustained-loss shed
  // level (~0.6): the second half ran essentially unshed.
  EXPECT_LT(r.mean_enhancement_shed, 0.45);
  EXPECT_GT(r.mean_enhancement_shed, 0.1);
  EXPECT_EQ(r.base_layer_misses, 0u);
}

TEST(FgsFault, GracefulSessionIsDeterministic) {
  const auto sched = FaultSchedule::from_trace(
      {{0.0, FaultKind::kFail, Target::kLink, 0}});
  holms::streaming::FgsConfig cfg;
  auto run = [&] {
    holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                               holms::dvfs::PowerModel{});
    holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
    holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
    return holms::streaming::run_fgs_session(
        holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 200,
        &loss);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.mean_psnr_db, b.mean_psnr_db);
  EXPECT_DOUBLE_EQ(a.min_psnr_db, b.min_psnr_db);
  EXPECT_DOUBLE_EQ(a.client_total_energy_j, b.client_total_energy_j);
  EXPECT_DOUBLE_EQ(a.mean_enhancement_shed, b.mean_enhancement_shed);
  EXPECT_EQ(a.base_layer_misses, b.base_layer_misses);
}

// ---------- robustness-aware explore() ----------

holms::core::Application fault_app() {
  holms::core::Application app;
  app.name = "pipe";
  const auto a = app.graph.add_node("a", 4e6);
  const auto b = app.graph.add_node("b", 6e6);
  const auto c = app.graph.add_node("c", 5e6);
  app.graph.add_edge(a, b, 1e5);
  app.graph.add_edge(b, c, 1e5);
  return app;
}

holms::core::FaultScenario fault_scenario() {
  holms::core::FaultScenario fs;
  fs.ambient.duration_s = 300.0;
  fs.ambient.tile_mtbf_s = 400.0;
  fs.ambient.tile_mttr_s = 120.0;
  fs.ambient.seed = 23;
  fs.replicas = 2;
  return fs;
}

TEST(ExploreFault, AvailabilityScoredAndThreadInvariant) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  const auto fs = fault_scenario();
  auto run = [&](std::size_t threads) {
    holms::core::ExploreOptions opts;
    opts.restarts = 2;
    opts.threads = threads;
    opts.faults = &fs;
    Rng rng(9);
    return holms::core::explore(app, plat, rng, opts);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_TRUE(serial.found_feasible);
  EXPECT_GT(serial.best.availability, 0.0);
  EXPECT_LE(serial.best.availability, 1.0);
  EXPECT_DOUBLE_EQ(serial.best.eval.total_energy_j,
                   parallel.best.eval.total_energy_j);
  EXPECT_DOUBLE_EQ(serial.best.availability, parallel.best.availability);
  EXPECT_EQ(serial.evaluated, parallel.evaluated);
  ASSERT_EQ(serial.pareto.size(), parallel.pareto.size());
  for (std::size_t i = 0; i < serial.pareto.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.pareto[i].availability,
                     parallel.pareto[i].availability);
    EXPECT_DOUBLE_EQ(serial.pareto[i].eval.total_energy_j,
                     parallel.pareto[i].eval.total_energy_j);
  }
}

TEST(ExploreFault, NoScenarioMeansFullAvailability) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  Rng rng(9);
  const auto res = holms::core::explore(app, plat, rng);
  ASSERT_TRUE(res.found_feasible);
  EXPECT_DOUBLE_EQ(res.best.availability, 1.0);
}

TEST(ExploreFault, UnreachableAvailabilityFloorRejectsEverything) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  auto fs = fault_scenario();
  fs.min_availability = 1.5;  // no candidate can clear > 1.0
  holms::core::ExploreOptions opts;
  opts.faults = &fs;
  Rng rng(9);
  const auto res = holms::core::explore(app, plat, rng, opts);
  EXPECT_FALSE(res.found_feasible);
  EXPECT_TRUE(res.pareto.empty());
}

}  // namespace
