// Cross-layer fault injection tests (holms::fault + consumers).
//
// The contract under test: every simulator driven by a (seed, FaultSchedule)
// pair is bitwise reproducible — same schedule, same numbers — and the
// fault-tolerant mechanisms (kFaultTolerant NoC routing, MANET route repair,
// FGS graceful degradation, robustness-aware explore()) degrade gracefully
// instead of wedging or silently lying.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ambient.hpp"
#include "core/explorer.hpp"
#include "exec/rng_stream.hpp"
#include "fault/domain.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "manet/routing.hpp"
#include "noc/router.hpp"
#include "serve/service.hpp"
#include "streaming/fgs.hpp"

namespace {

using holms::sim::Rng;
using holms::fault::FaultEvent;
using holms::fault::FaultKind;
using holms::fault::FaultSchedule;
using holms::fault::Target;

// ---------- schedule ----------

TEST(FaultSchedule, FromTraceCanonicalisesOrder) {
  const std::vector<FaultEvent> forward = {
      {1.0, FaultKind::kFail, Target::kLink, 3},
      {2.0, FaultKind::kFail, Target::kLink, 1},
      {2.0, FaultKind::kRepair, Target::kLink, 1},
  };
  std::vector<FaultEvent> shuffled = {forward[2], forward[0], forward[1]};
  const auto a = FaultSchedule::from_trace(forward);
  const auto b = FaultSchedule::from_trace(shuffled);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_DOUBLE_EQ(a.events()[0].time, 1.0);
  // Same (time, target, id): kFail sorts before kRepair.
  EXPECT_EQ(a.events()[1].kind, FaultKind::kFail);
  EXPECT_EQ(a.events()[2].kind, FaultKind::kRepair);
}

TEST(FaultSchedule, NegativeTimeThrows) {
  EXPECT_THROW(
      FaultSchedule::from_trace({{-0.5, FaultKind::kFail, Target::kNode, 0}}),
      std::invalid_argument);
}

TEST(FaultSchedule, PoissonIsSeedDeterministic) {
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = 16;
  spec.fail_rate = 1.0 / 50.0;
  spec.repair_rate = 1.0 / 10.0;
  spec.horizon = 1000.0;
  const auto a = FaultSchedule::poisson(42, spec);
  const auto b = FaultSchedule::poisson(42, spec);
  const auto c = FaultSchedule::poisson(43, spec);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
  }
}

TEST(FaultSchedule, PoissonTargetStreamsAreIndependent) {
  // Counter-based per-target streams: widening the target set never perturbs
  // the events of the targets already present.
  FaultSchedule::PoissonSpec narrow;
  narrow.target = Target::kTile;
  narrow.num_targets = 4;
  narrow.fail_rate = 0.01;
  narrow.repair_rate = 0.05;
  narrow.horizon = 2000.0;
  FaultSchedule::PoissonSpec wide = narrow;
  wide.num_targets = 9;
  const auto a = FaultSchedule::poisson(7, narrow);
  const auto b = FaultSchedule::poisson(7, wide);
  std::vector<FaultEvent> b_low;
  for (const auto& e : b.events()) {
    if (e.id < narrow.num_targets) b_low.push_back(e);
  }
  ASSERT_EQ(a.size(), b_low.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time, b_low[i].time);
    EXPECT_EQ(a.events()[i].id, b_low[i].id);
    EXPECT_EQ(a.events()[i].kind, b_low[i].kind);
  }
}

TEST(FaultSchedule, PoissonValidatesSpec) {
  FaultSchedule::PoissonSpec spec;
  spec.num_targets = 2;
  spec.horizon = 10.0;
  spec.fail_rate = 0.0;  // must be > 0
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
  spec.fail_rate = 0.1;
  spec.repair_rate = -1.0;
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
  spec.repair_rate = 0.0;
  spec.horizon = -5.0;
  EXPECT_THROW(FaultSchedule::poisson(1, spec), std::invalid_argument);
}

TEST(FaultSchedule, MergeIsCanonical) {
  const auto a = FaultSchedule::from_trace(
      {{5.0, FaultKind::kFail, Target::kLink, 0}});
  const auto b = FaultSchedule::from_trace(
      {{1.0, FaultKind::kFail, Target::kNode, 2}});
  const auto m = FaultSchedule::merge(a, b);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.events()[0].time, 1.0);
  EXPECT_EQ(FaultSchedule::merge(a, b).fingerprint(),
            FaultSchedule::merge(b, a).fingerprint());
}

TEST(FaultInjector, PollAppliesEventsUpToNow) {
  const auto s = FaultSchedule::from_trace({
      {1.0, FaultKind::kFail, Target::kNode, 0},
      {2.0, FaultKind::kFail, Target::kNode, 1},
      {3.0, FaultKind::kRepair, Target::kNode, 0},
  });
  holms::fault::FaultInjector inj(&s);
  EXPECT_TRUE(inj.armed());
  std::size_t applied = 0;
  EXPECT_EQ(inj.poll(0.5, [&](const FaultEvent&) { ++applied; }), 0u);
  EXPECT_EQ(inj.poll(2.0, [&](const FaultEvent&) { ++applied; }), 2u);
  EXPECT_FALSE(inj.exhausted());
  EXPECT_EQ(inj.poll(100.0, [&](const FaultEvent&) { ++applied; }), 1u);
  EXPECT_EQ(applied, 3u);
  EXPECT_TRUE(inj.exhausted());
}

// ---------- NoC ----------

holms::noc::NocSim::Config noc_cfg(holms::noc::RoutingAlgo algo) {
  holms::noc::NocSim::Config cfg;
  cfg.virtual_channels = 2;
  cfg.routing = algo;
  return cfg;
}

holms::noc::NocStats run_noc(const holms::noc::Mesh2D& mesh,
                             holms::noc::RoutingAlgo algo,
                             const FaultSchedule* schedule,
                             std::uint64_t cycles = 8000) {
  holms::noc::NocSim sim(mesh, noc_cfg(algo), Rng(99));
  add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                    0.02, 4);
  if (schedule != nullptr) sim.attach_fault_schedule(schedule);
  sim.run(cycles);
  return sim.stats();
}

TEST(NocFault, SameScheduleSameSeedBitwiseIdentical) {
  const holms::noc::Mesh2D mesh(6, 6);
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = mesh.num_undirected_links();
  spec.fail_rate = 1.0 / 4000.0;   // per-link, per-cycle
  spec.repair_rate = 1.0 / 1500.0;
  spec.horizon = 8000.0;
  const auto sched = FaultSchedule::poisson(21, spec);
  ASSERT_FALSE(sched.empty());
  const auto a =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &sched);
  const auto b =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &sched);
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.reroute_hops, b.reroute_hops);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_DOUBLE_EQ(a.mean_packet_latency, b.mean_packet_latency);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

TEST(NocFault, OnDemandFtTablesRouteIdenticallyToPrecomputed) {
  // The on-demand reverse-BFS + LRU path (meshes >= ft_on_demand_min_tiles)
  // must reproduce the precomputed-table routes exactly: force it on at 8x8
  // and compare every stats field bitwise against the default table mode,
  // under a fault schedule that crosses several epochs.
  const holms::noc::Mesh2D mesh(8, 8);
  std::vector<FaultEvent> trace;
  for (std::size_t i = 0; i < mesh.num_undirected_links(); i += 20) {
    trace.push_back({2000.0, FaultKind::kFail, Target::kLink, i});
    trace.push_back({5000.0, FaultKind::kRepair, Target::kLink, i});
  }
  trace.push_back({3000.0, FaultKind::kFail, Target::kNode, 27});
  const auto sched = FaultSchedule::from_trace(trace);

  auto run = [&](std::size_t min_tiles) {
    auto cfg = noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant);
    cfg.ft_on_demand_min_tiles = min_tiles;
    holms::noc::NocSim sim(mesh, cfg, Rng(99));
    add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                      0.02, 4);
    sim.attach_fault_schedule(&sched);
    sim.run(8000);
    return sim.stats();
  };
  const auto table = run(1024);   // default: 64 tiles < 1024 -> full table
  const auto lazy = run(1);       // forced on-demand + LRU
  EXPECT_GT(table.faults_applied, 0u);
  EXPECT_EQ(table.packets_injected, lazy.packets_injected);
  EXPECT_EQ(table.packets_delivered, lazy.packets_delivered);
  EXPECT_EQ(table.packets_dropped, lazy.packets_dropped);
  EXPECT_EQ(table.flit_hops, lazy.flit_hops);
  EXPECT_EQ(table.reroute_hops, lazy.reroute_hops);
  EXPECT_EQ(table.faults_applied, lazy.faults_applied);
  EXPECT_DOUBLE_EQ(table.mean_packet_latency, lazy.mean_packet_latency);
  EXPECT_DOUBLE_EQ(table.p99_packet_latency, lazy.p99_packet_latency);
  EXPECT_DOUBLE_EQ(table.energy_joules, lazy.energy_joules);
  EXPECT_DOUBLE_EQ(table.delivery_ratio, lazy.delivery_ratio);
}

TEST(NocFault, FaultTolerantSustainsDeliveryWhereXyBlackholes) {
  // Acceptance scenario: 8x8 mesh, ~5% of links fail mid-run and stay dead.
  const holms::noc::Mesh2D mesh(8, 8);
  std::vector<FaultEvent> trace;
  const std::size_t num_links = mesh.num_undirected_links();  // 112
  for (std::size_t i = 0; i < num_links; i += 20) {           // 6 links ~ 5.4%
    trace.push_back({2000.0, FaultKind::kFail, Target::kLink, i});
  }
  const auto sched = FaultSchedule::from_trace(trace);

  const auto ft = run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant,
                          &sched, 12000);
  const auto xy = run_noc(mesh, holms::noc::RoutingAlgo::kXY, &sched, 12000);

  EXPECT_GE(ft.delivery_ratio, 0.95);
  EXPECT_GT(ft.reroute_hops, 0u);  // detours actually taken
  // XY keeps steering worms into the dead links: deliveries collapse and the
  // stall-drop valve converts the blackholed heads into counted drops.
  EXPECT_LT(xy.delivery_ratio, 0.6);
  EXPECT_GT(xy.packets_dropped, 100u);
  EXPECT_GT(ft.delivery_ratio, xy.delivery_ratio + 0.3);
}

TEST(NocFault, FaultTolerantWithoutFaultsBehavesLikeBaseline) {
  const holms::noc::Mesh2D mesh(4, 4);
  const auto ft =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, nullptr, 4000);
  const auto xy = run_noc(mesh, holms::noc::RoutingAlgo::kXY, nullptr, 4000);
  EXPECT_EQ(ft.packets_dropped, 0u);
  EXPECT_EQ(xy.packets_dropped, 0u);
  EXPECT_GE(ft.delivery_ratio, 0.95);
  EXPECT_GE(xy.delivery_ratio, 0.95);
  EXPECT_EQ(ft.faults_applied, 0u);
}

TEST(NocFault, ManualLinkControlTogglesAndRepairs) {
  const holms::noc::Mesh2D mesh(3, 3);
  holms::noc::NocSim sim(mesh, noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant),
                         Rng(5));
  EXPECT_TRUE(sim.link_up(0, holms::noc::Dir::kEast));
  sim.set_link_up(0, holms::noc::Dir::kEast, false);
  EXPECT_FALSE(sim.link_up(0, holms::noc::Dir::kEast));
  // The reverse directed channel dies with it.
  EXPECT_FALSE(sim.link_up(1, holms::noc::Dir::kWest));
  sim.set_link_up(0, holms::noc::Dir::kEast, true);
  EXPECT_TRUE(sim.link_up(0, holms::noc::Dir::kEast));
  sim.set_router_up(4, false);
  EXPECT_FALSE(sim.router_up(4));
  sim.set_router_up(4, true);
  EXPECT_TRUE(sim.router_up(4));
}

TEST(NocFault, DeadRouterTrafficIsDroppedNotWedged) {
  const holms::noc::Mesh2D mesh(4, 4);
  holms::noc::NocSim sim(mesh, noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant),
                         Rng(11));
  holms::noc::Flow f;
  f.src = 0;
  f.dst = 15;
  f.packets_per_cycle = 0.05;
  f.packet_flits = 4;
  sim.add_flow(f);
  sim.set_router_up(15, false);  // destination gone: nothing is deliverable
  sim.run(4000);
  const auto st = sim.stats();
  EXPECT_GT(st.packets_injected, 0u);
  EXPECT_EQ(st.packets_delivered, 0u);
  EXPECT_GT(st.packets_dropped, 0u);
  EXPECT_DOUBLE_EQ(st.delivery_ratio, 0.0);
}

// ---------- MANET ----------

holms::manet::LifetimeConfig manet_cfg() {
  holms::manet::LifetimeConfig cfg;
  cfg.max_time_s = 800.0;
  cfg.num_flows = 4;
  return cfg;
}

TEST(ManetFault, SameScheduleSameSeedIdenticalCounts) {
  holms::manet::Manet::Params p;
  p.num_nodes = 30;
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kNode;
  spec.num_targets = p.num_nodes;
  spec.fail_rate = 1.0 / 300.0;
  spec.repair_rate = 1.0 / 80.0;
  spec.horizon = 800.0;
  const auto sched = FaultSchedule::poisson(13, spec);
  ASSERT_FALSE(sched.empty());
  const auto a = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  const auto b = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.route_repairs, b.route_repairs);
  EXPECT_EQ(a.repair_failures, b.repair_failures);
  EXPECT_EQ(a.packets_blackholed, b.packets_blackholed);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_DOUBLE_EQ(a.lifetime_s, b.lifetime_s);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

TEST(ManetFault, CrashScheduleTriggersRouteRepair) {
  holms::manet::Manet::Params p;
  p.num_nodes = 30;
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kNode;
  spec.num_targets = p.num_nodes;
  spec.fail_rate = 1.0 / 150.0;  // aggressive crashes
  spec.repair_rate = 1.0 / 60.0;
  spec.horizon = 800.0;
  const auto sched = FaultSchedule::poisson(29, spec);
  const auto faulty = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  const auto clean = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17);
  EXPECT_GT(faulty.faults_applied, 0u);
  EXPECT_GT(faulty.repairs_applied, 0u);
  EXPECT_GT(faulty.route_repairs, 0u);  // on-demand repair actually ran
  EXPECT_LE(faulty.packets_delivered, faulty.packets_sent);
  // Crashes cost deliveries, but repair keeps the session alive.
  EXPECT_LT(faulty.delivery_ratio, clean.delivery_ratio + 1e-9);
  EXPECT_GT(faulty.delivery_ratio, 0.0);
  EXPECT_EQ(clean.faults_applied, 0u);
}

// ---------- FGS streaming ----------

TEST(FgsFault, SlotLossTraceFollowsSchedule) {
  const auto sched = FaultSchedule::from_trace({
      {10.0, FaultKind::kFail, Target::kLink, 0},
      {20.0, FaultKind::kRepair, Target::kLink, 0},
  });
  holms::streaming::SlotLossTrace trace(&sched, 1.0, 0.01, 0.3);
  for (std::size_t s = 0; s < 30; ++s) {
    const double l = trace.loss_for_slot(s);
    if (s >= 10 && s < 20) {
      EXPECT_DOUBLE_EQ(l, 0.3) << "slot " << s;
    } else {
      EXPECT_DOUBLE_EQ(l, 0.01) << "slot " << s;
    }
  }
}

TEST(FgsFault, GracefulDegradationKeepsBaseIntactUnder30PctLoss) {
  // Permanent 30% loss from t=0.  The channel's worst state still carries
  // base/(1-loss) (~366 kbps), so shedding enhancement + FEC margin must keep
  // every slot's base layer decodable: zero misses, PSNR never below base.
  const auto sched = FaultSchedule::from_trace(
      {{0.0, FaultKind::kFail, Target::kLink, 0}});
  holms::streaming::FgsConfig cfg;
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
  holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
  const auto r = holms::streaming::run_fgs_session(
      holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 400,
      &loss);
  EXPECT_EQ(r.base_layer_misses, 0u);
  EXPECT_GE(r.min_psnr_db, cfg.psnr_base_db - 1e-9);
  EXPECT_NEAR(r.mean_loss, 0.3, 1e-9);
  EXPECT_GT(r.mean_enhancement_shed, 0.3);  // ladder actually engaged
}

TEST(FgsFault, GracefulRecoversWhenChannelHeals) {
  // Fault covers the first half of the session; after the repair the shed
  // fraction must decay back toward zero (EWMA-driven recovery).
  holms::streaming::FgsConfig cfg;
  const double half_t = 200 * cfg.slot_s;
  const auto sched = FaultSchedule::from_trace({
      {0.0, FaultKind::kFail, Target::kLink, 0},
      {half_t, FaultKind::kRepair, Target::kLink, 0},
  });
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
  holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
  const auto r = holms::streaming::run_fgs_session(
      holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 400,
      &loss);
  EXPECT_NEAR(r.mean_loss, 0.15, 1e-9);
  // Mean shed over the whole session sits well below the sustained-loss shed
  // level (~0.6): the second half ran essentially unshed.
  EXPECT_LT(r.mean_enhancement_shed, 0.45);
  EXPECT_GT(r.mean_enhancement_shed, 0.1);
  EXPECT_EQ(r.base_layer_misses, 0u);
}

TEST(FgsFault, GracefulSessionIsDeterministic) {
  const auto sched = FaultSchedule::from_trace(
      {{0.0, FaultKind::kFail, Target::kLink, 0}});
  holms::streaming::FgsConfig cfg;
  auto run = [&] {
    holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                               holms::dvfs::PowerModel{});
    holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
    holms::streaming::SlotLossTrace loss(&sched, cfg.slot_s, 0.0, 0.3);
    return holms::streaming::run_fgs_session(
        holms::streaming::FgsPolicy::kGracefulDegradation, cfg, cpu, ch, 200,
        &loss);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.mean_psnr_db, b.mean_psnr_db);
  EXPECT_DOUBLE_EQ(a.min_psnr_db, b.min_psnr_db);
  EXPECT_DOUBLE_EQ(a.client_total_energy_j, b.client_total_energy_j);
  EXPECT_DOUBLE_EQ(a.mean_enhancement_shed, b.mean_enhancement_shed);
  EXPECT_EQ(a.base_layer_misses, b.base_layer_misses);
}

// ---------- robustness-aware explore() ----------

holms::core::Application fault_app() {
  holms::core::Application app;
  app.name = "pipe";
  const auto a = app.graph.add_node("a", 4e6);
  const auto b = app.graph.add_node("b", 6e6);
  const auto c = app.graph.add_node("c", 5e6);
  app.graph.add_edge(a, b, 1e5);
  app.graph.add_edge(b, c, 1e5);
  return app;
}

holms::core::FaultScenario fault_scenario() {
  holms::core::FaultScenario fs;
  fs.ambient.duration_s = 300.0;
  fs.ambient.tile_mtbf_s = 400.0;
  fs.ambient.tile_mttr_s = 120.0;
  fs.ambient.seed = 23;
  fs.replicas = 2;
  return fs;
}

TEST(ExploreFault, AvailabilityScoredAndThreadInvariant) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  const auto fs = fault_scenario();
  auto run = [&](std::size_t threads) {
    holms::core::ExploreOptions opts;
    opts.restarts = 2;
    opts.threads = threads;
    opts.faults = &fs;
    Rng rng(9);
    return holms::core::explore(app, plat, rng, opts);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_TRUE(serial.found_feasible);
  EXPECT_GT(serial.best.availability, 0.0);
  EXPECT_LE(serial.best.availability, 1.0);
  EXPECT_DOUBLE_EQ(serial.best.eval.total_energy_j,
                   parallel.best.eval.total_energy_j);
  EXPECT_DOUBLE_EQ(serial.best.availability, parallel.best.availability);
  EXPECT_EQ(serial.evaluated, parallel.evaluated);
  ASSERT_EQ(serial.pareto.size(), parallel.pareto.size());
  for (std::size_t i = 0; i < serial.pareto.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.pareto[i].availability,
                     parallel.pareto[i].availability);
    EXPECT_DOUBLE_EQ(serial.pareto[i].eval.total_energy_j,
                     parallel.pareto[i].eval.total_energy_j);
  }
}

TEST(ExploreFault, NoScenarioMeansFullAvailability) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  Rng rng(9);
  const auto res = holms::core::explore(app, plat, rng);
  ASSERT_TRUE(res.found_feasible);
  EXPECT_DOUBLE_EQ(res.best.availability, 1.0);
}

TEST(ExploreFault, UnreachableAvailabilityFloorRejectsEverything) {
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  auto fs = fault_scenario();
  fs.min_availability = 1.5;  // no candidate can clear > 1.0
  holms::core::ExploreOptions opts;
  opts.faults = &fs;
  Rng rng(9);
  const auto res = holms::core::explore(app, plat, rng, opts);
  EXPECT_FALSE(res.found_feasible);
  EXPECT_TRUE(res.pareto.empty());
}

// ---------- failure-domain trees ----------

using holms::fault::FailureDomainTree;

// rack -> 2 enclosures -> 9 tiles (enc0 owns tiles 0..4, enc1 owns 5..8).
struct TileTree {
  FailureDomainTree tree{"rack"};
  std::size_t enc0 = 0;
  std::size_t enc1 = 0;
  TileTree() {
    enc0 = tree.add_domain(FailureDomainTree::kRoot, "enc0");
    enc1 = tree.add_domain(FailureDomainTree::kRoot, "enc1");
    for (std::size_t t = 0; t < 9; ++t) {
      tree.map_target(Target::kTile, t, t < 5 ? enc0 : enc1);
    }
  }
};

TEST(DomainTree, StructureQueriesAreCanonical) {
  TileTree tt;
  EXPECT_EQ(tt.tree.num_domains(), 3u);
  EXPECT_EQ(tt.tree.num_targets(), 9u);
  EXPECT_EQ(tt.tree.parent(tt.enc0), FailureDomainTree::kRoot);
  EXPECT_TRUE(tt.tree.is_ancestor(FailureDomainTree::kRoot, tt.enc1));
  EXPECT_TRUE(tt.tree.is_ancestor(tt.enc0, tt.enc0));
  EXPECT_FALSE(tt.tree.is_ancestor(tt.enc0, tt.enc1));
  EXPECT_EQ(tt.tree.subtree_targets(tt.enc0), 5u);
  EXPECT_EQ(tt.tree.subtree_targets(tt.enc1), 4u);
  EXPECT_EQ(tt.tree.subtree_targets(FailureDomainTree::kRoot), 9u);
  const auto under = tt.tree.targets_under(tt.enc1);
  ASSERT_EQ(under.size(), 4u);
  for (std::size_t i = 0; i < under.size(); ++i) {
    EXPECT_EQ(under[i].target, Target::kTile);
    EXPECT_EQ(under[i].id, 5 + i);  // canonical (target, id) order
  }
  // Fingerprint is a pure function of structure + mapping.
  EXPECT_EQ(tt.tree.fingerprint(), TileTree().tree.fingerprint());
}

TEST(DomainTree, RejectsBadParentsAndDuplicateTargets) {
  FailureDomainTree tree;
  EXPECT_THROW(tree.add_domain(99, "orphan"), std::invalid_argument);
  const auto d = tree.add_domain(FailureDomainTree::kRoot, "d");
  tree.map_target(Target::kNode, 3, d);
  EXPECT_THROW(tree.map_target(Target::kNode, 3, FailureDomainTree::kRoot),
               std::invalid_argument);
  EXPECT_THROW(tree.map_target(Target::kLink, 0, 42), std::invalid_argument);
  EXPECT_THROW(tree.targets_under(42), std::invalid_argument);
}

// ---------- correlated domain bursts ----------

FaultSchedule::BurstSpec tile_burst_spec(const TileTree& tt) {
  FaultSchedule::BurstSpec spec;
  spec.domains = {tt.enc0, tt.enc1};
  spec.burst_rate = 1.0 / 40.0;
  spec.onset_jitter = 0.5;
  spec.repair_time = 2.0;
  spec.repair_stagger = 1.0;
  spec.horizon = 200.0;
  return spec;
}

TEST(DomainBurst, SameSeedSameFingerprint) {
  TileTree tt;
  const auto spec = tile_burst_spec(tt);
  const auto a = FaultSchedule::bursts(5, tt.tree, spec);
  const auto b = FaultSchedule::bursts(5, tt.tree, spec);
  const auto c = FaultSchedule::bursts(6, tt.tree, spec);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(DomainBurst, BurstFailsEveryTargetInSubtree) {
  // One eligible domain, rate high enough that at least one burst lands:
  // every target under the domain must fail, none outside it.
  TileTree tt;
  FaultSchedule::BurstSpec spec;
  spec.domains = {tt.enc0};
  spec.burst_rate = 1.0;  // ~200 bursts over the horizon
  spec.horizon = 200.0;
  spec.repair_time = 0.05;
  FaultSchedule::BurstStats stats;
  const auto sched = FaultSchedule::bursts(11, tt.tree, spec, &stats);
  EXPECT_GT(stats.bursts, 0u);
  EXPECT_EQ(stats.targets_failed, stats.bursts * 5);  // enc0 owns 5 tiles
  std::vector<std::size_t> fails(9, 0);
  for (const auto& e : sched.events()) {
    EXPECT_EQ(e.target, Target::kTile);
    if (e.kind == FaultKind::kFail) ++fails[e.id];
  }
  for (std::size_t t = 0; t < 5; ++t) EXPECT_EQ(fails[t], stats.bursts);
  for (std::size_t t = 5; t < 9; ++t) EXPECT_EQ(fails[t], 0u);
}

TEST(DomainBurst, CrewCountShapesTheTrace) {
  // The repair legs depend on the crew pool, so crews=1 and unlimited crews
  // must yield different traces; the fail legs are identical.
  TileTree tt;
  auto spec = tile_burst_spec(tt);
  FaultSchedule::BurstStats unlimited_stats;
  const auto unlimited =
      FaultSchedule::bursts(5, tt.tree, spec, &unlimited_stats);
  spec.crews = 1;
  FaultSchedule::BurstStats one_stats;
  const auto one = FaultSchedule::bursts(5, tt.tree, spec, &one_stats);
  ASSERT_FALSE(unlimited.empty());
  EXPECT_NE(unlimited.fingerprint(), one.fingerprint());
  EXPECT_EQ(one_stats.bursts, unlimited_stats.bursts);
  EXPECT_EQ(one_stats.targets_failed, unlimited_stats.targets_failed);

  auto fails_only = [](const FaultSchedule& s) {
    std::vector<FaultEvent> f;
    for (const auto& e : s.events()) {
      if (e.kind == FaultKind::kFail) f.push_back(e);
    }
    return FaultSchedule::from_trace(std::move(f)).fingerprint();
  };
  EXPECT_EQ(fails_only(unlimited), fails_only(one));

  // One crew serialises every repair: the last repair lands strictly later
  // and the queue visibly saturates (a whole enclosure fails at once).
  EXPECT_GT(one_stats.last_repair_time, unlimited_stats.last_repair_time);
  EXPECT_GE(one_stats.crew_queue_max_depth, 2u);
  EXPECT_LE(unlimited_stats.crew_queue_max_depth, 1u);
}

TEST(DomainBurst, CrewSaturationDelaysAvailability) {
  // Replaying the crews=1 trace through the ambient scenario must cost
  // availability relative to the unlimited-crew trace of the same bursts.
  TileTree tt;
  auto spec = tile_burst_spec(tt);
  spec.horizon = 300.0;
  const auto unlimited = FaultSchedule::bursts(5, tt.tree, spec);
  spec.crews = 1;
  const auto one = FaultSchedule::bursts(5, tt.tree, spec);

  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  holms::core::AmbientConfig cfg;
  cfg.duration_s = 300.0;
  cfg.activity_low = 1.0;  // pin activity: availability is fault-driven only
  cfg.seed = 23;
  auto run = [&](const FaultSchedule* s) {
    holms::core::AmbientOptions opts;
    opts.schedule = s;
    return holms::core::run_ambient_scenario(
        app, plat, holms::core::FaultPolicy::kStatic, cfg, opts);
  };
  const auto res_unlimited = run(&unlimited);
  const auto res_one = run(&one);
  EXPECT_GT(res_one.failures_injected, 0u);
  EXPECT_LT(res_one.availability, res_unlimited.availability);
  EXPECT_EQ(res_one.period_ok.size(), res_one.periods);
}

TEST(DomainBurst, ValidatesSpec) {
  TileTree tt;
  FaultSchedule::BurstSpec spec;  // empty domains
  spec.burst_rate = 1.0;
  spec.horizon = 10.0;
  EXPECT_THROW(FaultSchedule::bursts(1, tt.tree, spec),
               std::invalid_argument);
  spec.domains = {tt.enc0, tt.enc0};  // duplicate
  EXPECT_THROW(FaultSchedule::bursts(1, tt.tree, spec),
               std::invalid_argument);
  spec.domains = {99};  // out of range
  EXPECT_THROW(FaultSchedule::bursts(1, tt.tree, spec),
               std::invalid_argument);
  spec.domains = {tt.enc0};
  spec.burst_rate = 0.0;  // must be > 0
  EXPECT_THROW(FaultSchedule::bursts(1, tt.tree, spec),
               std::invalid_argument);
}

// ---------- transient soft faults + scrubbing ----------

FaultSchedule::SoftSpec soft_spec() {
  FaultSchedule::SoftSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = 4;
  spec.soft_rate = 1.0 / 30.0;
  spec.scrub_interval = 10.0;
  spec.horizon = 400.0;
  return spec;
}

TEST(SoftFault, SeedDeterministicAndScrubBalanced) {
  const auto spec = soft_spec();
  const auto a = FaultSchedule::soft(3, spec);
  const auto b = FaultSchedule::soft(3, spec);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), FaultSchedule::soft(4, spec).fingerprint());
  // Every soft fault is cleared by a scrub at the next scrubbing pass, so
  // per-target counts balance and only soft kinds appear.
  std::vector<long> pending(spec.num_targets, 0);
  std::size_t soft_seen = 0;
  for (const auto& e : a.events()) {
    ASSERT_TRUE(e.kind == FaultKind::kSoftFail || e.kind == FaultKind::kScrub);
    if (e.kind == FaultKind::kSoftFail) {
      ++pending[e.id];
      ++soft_seen;
      // Scrub passes land on the global grid, never before the fault.
    } else {
      --pending[e.id];
      EXPECT_GE(pending[e.id], 0);
    }
  }
  EXPECT_GT(soft_seen, 0u);
  for (const auto p : pending) EXPECT_EQ(p, 0);
}

TEST(SoftFault, SlotLossTraceDistinguishesSoftFromHard) {
  const auto sched = FaultSchedule::from_trace({
      {5.0, FaultKind::kSoftFail, Target::kLink, 0},
      {10.0, FaultKind::kScrub, Target::kLink, 0},
      {15.0, FaultKind::kFail, Target::kLink, 0},
      {18.0, FaultKind::kSoftFail, Target::kLink, 0},  // hard outage dominates
      {20.0, FaultKind::kRepair, Target::kLink, 0},
      {25.0, FaultKind::kScrub, Target::kLink, 0},
  });
  holms::streaming::SlotLossTrace trace(&sched, 1.0, 0.01, 0.4, 0.1);
  for (std::size_t s = 0; s < 30; ++s) {
    const double l = trace.loss_for_slot(s);
    if (s >= 15 && s < 20) {
      EXPECT_DOUBLE_EQ(l, 0.4) << "slot " << s;  // hard fault
    } else if ((s >= 5 && s < 10) || (s >= 20 && s < 25)) {
      EXPECT_DOUBLE_EQ(l, 0.1) << "slot " << s;  // soft corruption
    } else {
      EXPECT_DOUBLE_EQ(l, 0.01) << "slot " << s;
    }
  }
  EXPECT_EQ(trace.scrubs_applied(), 2u);
}

TEST(SoftFault, ScrubbingNeverOccupiesARepairCrew) {
  // Merging a soft schedule into a crews=1 burst trace must not change the
  // crew telemetry (scrubbing is background hygiene, not crew work), and the
  // ambient scenario counts — but never acts on — the soft events.
  TileTree tt;
  auto bspec = tile_burst_spec(tt);
  bspec.crews = 1;
  FaultSchedule::BurstStats alone;
  const auto burst = FaultSchedule::bursts(5, tt.tree, bspec, &alone);
  FaultSchedule::SoftSpec sspec = soft_spec();
  sspec.target = Target::kTile;
  sspec.num_targets = 9;
  sspec.horizon = 200.0;
  const auto merged = FaultSchedule::merge(burst, FaultSchedule::soft(3, sspec));
  FaultSchedule::BurstStats again;
  FaultSchedule::bursts(5, tt.tree, bspec, &again);
  EXPECT_EQ(alone.crew_queue_max_depth, again.crew_queue_max_depth);
  EXPECT_DOUBLE_EQ(alone.last_repair_time, again.last_repair_time);

  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  holms::core::AmbientConfig cfg;
  cfg.duration_s = 200.0;
  cfg.activity_low = 1.0;
  auto run = [&](const FaultSchedule* s) {
    holms::core::AmbientOptions opts;
    opts.schedule = s;
    return holms::core::run_ambient_scenario(
        app, plat, holms::core::FaultPolicy::kStatic, cfg, opts);
  };
  const auto hard_only = run(&burst);
  const auto with_soft = run(&merged);
  EXPECT_GT(with_soft.soft_faults_seen, 0u);
  EXPECT_GT(with_soft.scrubs_seen, 0u);
  EXPECT_EQ(hard_only.soft_faults_seen, 0u);
  // Tile liveness — and so availability — is untouched by soft events.
  EXPECT_EQ(with_soft.periods_ok, hard_only.periods_ok);
  EXPECT_EQ(with_soft.periods_failed, hard_only.periods_failed);
  EXPECT_DOUBLE_EQ(with_soft.availability, hard_only.availability);
}

TEST(SoftFault, ServeSoftLossDrivesGracefulShedding) {
  // serve: a locality under transient soft corruption sheds enhancement on
  // its graceful-degradation sessions, without any hard outage.
  FaultSchedule::SoftSpec spec;
  spec.target = Target::kNode;  // serve locality namespace
  spec.num_targets = 2;
  spec.soft_rate = 1.0;  // essentially always corrupted until scrubbed
  spec.scrub_interval = 5.0;
  spec.horizon = 30.0;
  const auto soft = FaultSchedule::soft(17, spec);
  auto run = [&](const FaultSchedule* s) {
    holms::serve::ServeOptions o;
    o.localities = 2;
    o.threads = 1;
    o.soft_loss = 0.3;
    holms::serve::ServiceManager m(o);
    if (s != nullptr) m.attach_fault_schedule(s);
    const holms::streaming::FgsConfig cfg;
    for (std::size_t i = 0; i < 8; ++i) {
      m.add_fgs_session(holms::streaming::FgsPolicy::kGracefulDegradation,
                        cfg, 40);
    }
    return m.run(30.0);
  };
  const auto corrupted = run(&soft);
  const auto clean = run(nullptr);
  EXPECT_GT(corrupted.session_shed.mean(), clean.session_shed.mean());
  EXPECT_GT(corrupted.session_shed.mean(), 0.05);
  // Deterministic replay: same schedule, same report.
  EXPECT_EQ(corrupted.fingerprint(), run(&soft).fingerprint());
}

// ---------- windowed availability SLO ----------

TEST(AvailabilitySlo, ScoresTumblingWindows) {
  // 100 periods, one 10-period outage inside the second window of 20.
  std::vector<std::uint8_t> ok(100, 1);
  for (std::size_t p = 25; p < 35; ++p) ok[p] = 0;
  const auto s = holms::core::availability_slo(ok, 0.999, 20);
  EXPECT_EQ(s.windows, 5u);
  EXPECT_EQ(s.windows_met, 4u);
  EXPECT_EQ(s.window, 20u);
  EXPECT_DOUBLE_EQ(s.slo_fraction, 0.8);
  EXPECT_DOUBLE_EQ(s.worst_window_availability, 0.5);  // 10/20 in window 1
}

TEST(AvailabilitySlo, PartialFinalWindowScoredOverActualLength) {
  std::vector<std::uint8_t> ok(25, 1);
  ok[24] = 0;  // last window holds periods 20..24 only
  const auto s = holms::core::availability_slo(ok, 0.999, 10);
  EXPECT_EQ(s.windows, 3u);
  EXPECT_EQ(s.windows_met, 2u);
  EXPECT_DOUBLE_EQ(s.worst_window_availability, 0.8);  // 4/5
  // A lax target admits the partial window too.
  EXPECT_EQ(holms::core::availability_slo(ok, 0.75, 10).windows_met, 3u);
}

TEST(AvailabilitySlo, EmptyTraceAndValidation) {
  const auto s = holms::core::availability_slo({}, 0.999, 10);
  EXPECT_EQ(s.windows, 0u);
  EXPECT_DOUBLE_EQ(s.slo_fraction, 1.0);
  EXPECT_THROW(holms::core::availability_slo({1}, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW(holms::core::availability_slo({1}, 1.5, 10),
               std::invalid_argument);
  EXPECT_THROW(holms::core::availability_slo({1}, 0.999, 0),
               std::invalid_argument);
}

// A bursty tile schedule engineered so the *mean* availability stays high
// (short, rare outages over a long run) while the windows containing the
// bursts blow the SLO — the divergence the windowed score exists to expose.
FaultSchedule divergence_schedule() {
  TileTree tt;
  FaultSchedule::BurstSpec spec;
  // One rack-level burst early in the run: all 9 tiles fail and a single
  // crew repairs them one by one (~0.45 s each), so the outage lasts a few
  // seconds — deep enough to blow a 10 s window, brief enough that the mean
  // over an hour still clears three nines.
  spec.domains = {FailureDomainTree::kRoot};
  spec.burst_rate = 1.0 / 100.0;
  spec.onset_jitter = 0.05;
  spec.repair_time = 0.4;
  spec.repair_stagger = 0.1;
  spec.horizon = 100.0;
  spec.crews = 1;
  return FaultSchedule::bursts(41, tt.tree, spec);
}

TEST(ExploreFault, MeanAvailabilityHidesWhatTheSloCatches) {
  const auto sched = divergence_schedule();
  ASSERT_FALSE(sched.empty());
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  holms::core::AmbientConfig cfg;
  cfg.duration_s = 3600.0;
  cfg.activity_low = 1.0;
  holms::core::AmbientOptions opts;
  opts.schedule = &sched;
  const auto res = holms::core::run_ambient_scenario(
      app, plat, holms::core::FaultPolicy::kStatic, cfg, opts);
  ASSERT_GT(res.failures_injected, 0u);
  // The acceptance divergence: mean clears three nines...
  EXPECT_GE(res.availability, 0.999);
  EXPECT_LT(res.availability, 1.0);
  // ...while 10 s windows (250 periods at the 40 ms QoS period) do not.
  const auto slo = holms::core::availability_slo(res.period_ok, 0.999, 250);
  EXPECT_LT(slo.slo_fraction, 1.0);
  EXPECT_LT(slo.worst_window_availability, 0.9);
}

TEST(ExploreFault, SloFloorRejectsWhatTheMeanFloorAccepts) {
  const auto sched = divergence_schedule();
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  holms::core::FaultScenario fs;
  fs.ambient.duration_s = 3600.0;
  fs.ambient.activity_low = 1.0;
  fs.ambient.seed = 23;
  fs.policy = holms::core::FaultPolicy::kStatic;
  fs.replicas = 2;
  fs.schedule = &sched;
  fs.slo_window = 250;
  fs.min_availability = 0.999;  // mean floor: passes
  holms::core::ExploreOptions opts;
  opts.restarts = 1;
  opts.faults = &fs;
  {
    Rng rng(9);
    const auto res = holms::core::explore(app, plat, rng, opts);
    ASSERT_TRUE(res.found_feasible);
    EXPECT_GE(res.best.availability, 0.999);
    EXPECT_LT(res.best.slo_fraction, 1.0);
    EXPECT_LT(res.best.worst_window_availability, 0.9);
  }
  fs.min_slo_fraction = 1.0;  // SLO floor: the same designs now fail
  {
    Rng rng(9);
    const auto res = holms::core::explore(app, plat, rng, opts);
    EXPECT_FALSE(res.found_feasible);
  }
}

TEST(ExploreFault, SloScoresAreThreadCountInvariant) {
  const auto sched = divergence_schedule();
  const auto app = fault_app();
  const auto plat = holms::core::Platform::homogeneous(3, 3);
  holms::core::FaultScenario fs;
  fs.ambient.duration_s = 1200.0;
  fs.ambient.activity_low = 1.0;
  fs.ambient.seed = 23;
  fs.policy = holms::core::FaultPolicy::kStatic;
  fs.replicas = 3;
  fs.schedule = &sched;
  fs.slo_window = 250;
  auto run = [&](std::size_t threads) {
    holms::core::ExploreOptions opts;
    opts.restarts = 2;
    opts.threads = threads;
    opts.faults = &fs;
    Rng rng(9);
    return holms::core::explore(app, plat, rng, opts);
  };
  const auto base = run(1);
  ASSERT_TRUE(base.found_feasible);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto r = run(threads);
    EXPECT_DOUBLE_EQ(base.best.availability, r.best.availability)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(base.best.slo_fraction, r.best.slo_fraction)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(base.best.worst_window_availability,
                     r.best.worst_window_availability)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(base.best.eval.total_energy_j,
                     r.best.eval.total_energy_j)
        << threads << " threads";
    EXPECT_EQ(base.evaluated, r.evaluated) << threads << " threads";
  }
}

// ---------- NoC row bursts ----------

TEST(NocFault, RowBurstOnDemandMatchesTableBitwise) {
  // A cable-bundle domain owning every horizontal link of two mesh rows:
  // one burst severs whole rows at once, and the on-demand FT path must
  // reroute identically to the precomputed tables.
  const holms::noc::Mesh2D mesh(8, 8);
  FailureDomainTree tree("mesh");
  const auto bundle3 = tree.add_domain(FailureDomainTree::kRoot, "row3");
  const auto bundle5 = tree.add_domain(FailureDomainTree::kRoot, "row5");
  for (std::size_t i = 0; i < 7; ++i) {
    tree.map_target(Target::kLink, 3 * 7 + i, bundle3);  // row-3 horizontals
    tree.map_target(Target::kLink, 5 * 7 + i, bundle5);
  }
  FaultSchedule::BurstSpec spec;
  spec.domains = {bundle3, bundle5};
  spec.burst_rate = 1.0 / 4000.0;  // times are cycles here
  spec.onset_jitter = 50.0;
  spec.repair_time = 2500.0;
  spec.repair_stagger = 500.0;
  spec.horizon = 8000.0;
  spec.crews = 2;
  const auto sched = FaultSchedule::bursts(33, tree, spec);
  ASSERT_FALSE(sched.empty());

  auto run = [&](std::size_t min_tiles) {
    auto cfg = noc_cfg(holms::noc::RoutingAlgo::kFaultTolerant);
    cfg.ft_on_demand_min_tiles = min_tiles;
    holms::noc::NocSim sim(mesh, cfg, Rng(99));
    add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                      0.02, 4);
    sim.attach_fault_schedule(&sched);
    sim.run(8000);
    return sim.stats();
  };
  const auto table = run(1024);
  const auto lazy = run(1);
  EXPECT_GT(table.faults_applied, 0u);
  EXPECT_GT(table.reroute_hops, 0u);  // the severed rows forced detours
  EXPECT_EQ(table.packets_injected, lazy.packets_injected);
  EXPECT_EQ(table.packets_delivered, lazy.packets_delivered);
  EXPECT_EQ(table.packets_dropped, lazy.packets_dropped);
  EXPECT_EQ(table.flit_hops, lazy.flit_hops);
  EXPECT_EQ(table.reroute_hops, lazy.reroute_hops);
  EXPECT_EQ(table.faults_applied, lazy.faults_applied);
  EXPECT_DOUBLE_EQ(table.mean_packet_latency, lazy.mean_packet_latency);
  EXPECT_DOUBLE_EQ(table.energy_joules, lazy.energy_joules);
  EXPECT_DOUBLE_EQ(table.delivery_ratio, lazy.delivery_ratio);
}

// ---------- MANET enclosure bursts ----------

TEST(ManetFault, EnclosureBurstCrashesAreCorrelatedAndDeterministic) {
  // 30 nodes in 3 enclosures of 10: one backplane burst crashes a third of
  // the network near-simultaneously, which Poisson i.i.d. crashes never do.
  holms::manet::Manet::Params p;
  p.num_nodes = 30;
  FailureDomainTree tree("site");
  std::vector<std::size_t> encs;
  for (std::size_t e = 0; e < 3; ++e) {
    encs.push_back(tree.add_domain(FailureDomainTree::kRoot,
                                   "enc" + std::to_string(e)));
  }
  for (std::size_t n = 0; n < p.num_nodes; ++n) {
    tree.map_target(Target::kNode, n, encs[n / 10]);
  }
  FaultSchedule::BurstSpec spec;
  spec.domains = encs;
  spec.burst_rate = 1.0 / 600.0;
  spec.onset_jitter = 2.0;
  spec.repair_time = 60.0;
  spec.repair_stagger = 20.0;
  spec.horizon = 800.0;
  spec.crews = 2;
  FaultSchedule::BurstStats stats;
  const auto sched = FaultSchedule::bursts(47, tree, spec, &stats);
  ASSERT_GT(stats.bursts, 0u);
  EXPECT_EQ(stats.targets_failed, stats.bursts * 10);  // whole enclosures

  const auto a = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  const auto b = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, p, manet_cfg(), 17, &sched);
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_GT(a.route_repairs, 0u);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
}

}  // namespace
