// Kill-and-resume driver for the island explorer (DESIGN.md §5l).
//
// The ctest leg `island_resume_reexec` runs `selftest`, which (1) computes
// the fingerprint of an uninterrupted K=2, 4-epoch island run in-process,
// then (2) re-executes this same binary twice — `part` runs 2 epochs and
// writes a checkpoint before exiting (the "kill"), `resume` loads the blob
// in a genuinely fresh process, runs the remaining epochs and writes its
// fingerprint to a file — and (3) compares the two fingerprints.  Exit 0
// iff they are bitwise identical.  Thread count comes from HOLMS_THREADS,
// so the CI matrix exercises the cross-process identity serially and on a
// real pool.
//
// Modes (also usable by hand):
//   island_resume_driver selftest <workdir>
//   island_resume_driver full <fingerprint-file>
//   island_resume_driver part <checkpoint-file>
//   island_resume_driver resume <checkpoint-file> <fingerprint-file>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/islands.hpp"
#include "core/platform.hpp"
#include "exec/thread_pool.hpp"
#include "noc/taskgraph.hpp"

namespace {

using namespace holms::core;

constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kEpochsTotal = 4;
constexpr std::size_t kEpochsBeforeKill = 2;

Application driver_app() {
  Application app;
  app.name = "resume-driver";
  holms::sim::Rng rng(11);
  app.graph = holms::noc::random_graph(14, rng, 6e5);
  app.qos.period_s = 0.05;
  return app;
}

IslandOptions driver_opts() {
  IslandOptions opts;
  opts.islands = 2;
  opts.epochs = kEpochsTotal;
  opts.sa.iterations = 400;
  opts.threads = holms::exec::env_threads(1);
  return opts;
}

IslandExplorer fresh_explorer(const Application& app, const Platform& plat) {
  holms::sim::Rng rng(kSeed);
  return IslandExplorer(app, plat, rng, driver_opts());
}

void write_fingerprint(const std::string& path, std::uint64_t fp) {
  std::ofstream out(path, std::ios::trunc);
  out << fp << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write fingerprint to %s\n", path.c_str());
    std::exit(2);
  }
}

std::uint64_t read_fingerprint(const std::string& path) {
  std::ifstream in(path);
  std::uint64_t fp = 0;
  if (!(in >> fp)) {
    std::fprintf(stderr, "cannot read fingerprint from %s\n", path.c_str());
    std::exit(2);
  }
  return fp;
}

int run_full(const std::string& fp_path) {
  const Application app = driver_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandExplorer ex = fresh_explorer(app, plat);
  ex.step(kEpochsTotal);
  write_fingerprint(fp_path, ex.result_fingerprint());
  return 0;
}

int run_part(const std::string& ckpt_path) {
  const Application app = driver_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandExplorer ex = fresh_explorer(app, plat);
  ex.step(kEpochsBeforeKill);
  ex.save_checkpoint(ckpt_path);
  // Process exits here: everything not in the blob is deliberately lost.
  return 0;
}

int run_resume(const std::string& ckpt_path, const std::string& fp_path) {
  const Application app = driver_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandExplorer ex =
      IslandExplorer::resume_from_file(app, plat, driver_opts(), ckpt_path);
  ex.step(kEpochsTotal - ex.epoch());
  write_fingerprint(fp_path, ex.result_fingerprint());
  return 0;
}

int run_selftest(const std::string& self, const std::string& workdir) {
  // Reference fingerprint from the uninterrupted run, in-process.
  const Application app = driver_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandExplorer full = fresh_explorer(app, plat);
  full.step(kEpochsTotal);
  const std::uint64_t want = full.result_fingerprint();

  const std::string ckpt = workdir + "/island_resume.ckpt";
  const std::string fp_file = workdir + "/island_resume.fp";
  const std::string part_cmd = "'" + self + "' part '" + ckpt + "'";
  const std::string resume_cmd =
      "'" + self + "' resume '" + ckpt + "' '" + fp_file + "'";
  if (std::system(part_cmd.c_str()) != 0) {
    std::fprintf(stderr, "FAIL: part phase exited nonzero\n");
    return 1;
  }
  if (std::system(resume_cmd.c_str()) != 0) {
    std::fprintf(stderr, "FAIL: resume phase exited nonzero\n");
    return 1;
  }
  const std::uint64_t got = read_fingerprint(fp_file);
  if (got != want) {
    std::fprintf(stderr,
                 "FAIL: resume fingerprint %llu != uninterrupted %llu\n",
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    return 1;
  }
  std::printf("island resume identity OK (fingerprint %llu, threads %zu)\n",
              static_cast<unsigned long long>(want),
              holms::exec::env_threads(1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  try {
    if (mode == "full" && argc == 3) return run_full(argv[2]);
    if (mode == "part" && argc == 3) return run_part(argv[2]);
    if (mode == "resume" && argc == 4) return run_resume(argv[2], argv[3]);
    if (mode == "selftest" && argc == 3) return run_selftest(argv[0], argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: %s selftest <workdir> | full <fp-file> | "
               "part <ckpt> | resume <ckpt> <fp-file>\n",
               argc > 0 ? argv[0] : "island_resume_driver");
  return 2;
}
