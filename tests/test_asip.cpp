// Unit tests for the extensible-processor subsystem (holms::asip) —
// paper §3.1, Fig.2.
#include <gtest/gtest.h>

#include "asip/assembler.hpp"
#include "asip/builder.hpp"
#include "asip/extensions.hpp"
#include "asip/flow.hpp"
#include "asip/iss.hpp"
#include "asip/jpeg.hpp"
#include "asip/kernels.hpp"

namespace {

using namespace holms::asip;

Iss make_iss(std::vector<Extension> exts = {}) {
  CoreConfig cfg;
  return Iss(cfg, std::move(exts));
}

// ---------- builder ----------

TEST(Builder, ForwardAndBackwardLabels) {
  ProgramBuilder b;
  b.li(1, 0);
  b.label("loop");
  b.addi(1, 1, 1);
  b.li(2, 5);
  b.blt(1, 2, "loop");
  b.jmp("end");
  b.li(3, 99);  // skipped
  b.label("end");
  b.halt();
  const Program p = b.build();
  Iss iss = make_iss();
  const RunResult r = iss.run(p);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(iss.state().reg(1), 5);
  EXPECT_EQ(iss.state().reg(3), 0);
}

TEST(Builder, UndefinedLabelThrows) {
  ProgramBuilder b;
  b.jmp("nowhere");
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, DuplicateLabelThrows) {
  ProgramBuilder b;
  b.label("x");
  b.halt();
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(Builder, RegionsAttributedPerInstruction) {
  ProgramBuilder b;
  b.region("alpha");
  b.li(1, 1);
  b.region("beta");
  b.li(2, 2);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.region[0], "alpha");
  EXPECT_EQ(p.region[1], "beta");
}

// ---------- text assembler ----------

TEST(Assembler, AssemblesAndRunsLoop) {
  const Program p = assemble(R"(
    ; sum 1..10 into r2
    .region summing
      li   r1, 0        ; counter
      li   r2, 0        ; accumulator
      li   r3, 10
    loop:
      addi r1, r1, 1
      add  r2, r2, r1
      blt  r1, r3, loop
      halt
  )");
  Iss iss = make_iss();
  const RunResult r = iss.run(p);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(iss.state().reg(2), 55);
  EXPECT_TRUE(r.by_region.count("summing"));
}

TEST(Assembler, MemoryAndOffsets) {
  const Program p = assemble(R"(
    li r1, 100
    li r2, -7
    sw r1, r2, 3     ; mem[103] = -7
    lw r3, r1, 3
    sw r1, r3        ; mem[100] = -7 (default offset 0)
    halt
  )");
  Iss iss = make_iss();
  iss.run(p);
  EXPECT_EQ(iss.state().peek(103), -7);
  EXPECT_EQ(iss.state().peek(100), -7);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const Program p = assemble(R"(
    li r1, 3
    top: addi r1, r1, -1
    bne r1, r0, top
    halt
  )");
  Iss iss = make_iss();
  EXPECT_TRUE(iss.run(p).halted);
  EXPECT_EQ(iss.state().reg(1), 0);
}

TEST(Assembler, CustomInstructionSyntax) {
  const Program p = assemble(R"(
    li r1, 9
    li r2, 4
    custom 0, r3, r1, r2
    halt
  )");
  Iss iss(CoreConfig{}, {find_extension(kExtAbsDiff)});
  iss.run(p);
  EXPECT_EQ(iss.state().reg(3), 5);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("li r1, 1\nbogus r2\nhalt\n");
    FAIL() << "expected AssemblerError";
  } catch (const AssemblerError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  EXPECT_THROW(assemble("li r99, 1"), AssemblerError);
  EXPECT_THROW(assemble("li r1"), AssemblerError);
  EXPECT_THROW(assemble("li r1, xyz"), AssemblerError);
  EXPECT_THROW(assemble("jmp nowhere"), AssemblerError);
  EXPECT_THROW(assemble("x:\nx:\nhalt"), AssemblerError);
}

TEST(Assembler, DisassembleRoundTripNames) {
  const Program p = assemble(R"(
    li r1, 5
    addi r2, r1, -3
    lw r3, r2, 1
    beq r1, r2, end
    end: halt
  )");
  EXPECT_EQ(disassemble(p.code[0]), "li r1, 5");
  EXPECT_EQ(disassemble(p.code[1]), "addi r2, r1, -3");
  EXPECT_EQ(disassemble(p.code[2]), "lw r3, r2, 1");
  EXPECT_EQ(disassemble(p.code[3]), "beq r1, r2, @4");
  EXPECT_EQ(disassemble(p.code[4]), "halt");
}

// ---------- ISS semantics ----------

TEST(Iss, ArithmeticAndLogic) {
  ProgramBuilder b;
  b.li(1, 6);
  b.li(2, 3);
  b.add(3, 1, 2);   // 9
  b.sub(4, 1, 2);   // 3
  b.mul(5, 1, 2);   // 18
  b.and_(6, 1, 2);  // 2
  b.or_(7, 1, 2);   // 7
  b.xor_(8, 1, 2);  // 5
  b.li(9, 2);
  b.sll(10, 1, 9);  // 24
  b.sra(11, 1, 9);  // 1
  b.halt();
  Iss iss = make_iss();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(3), 9);
  EXPECT_EQ(iss.state().reg(4), 3);
  EXPECT_EQ(iss.state().reg(5), 18);
  EXPECT_EQ(iss.state().reg(6), 2);
  EXPECT_EQ(iss.state().reg(7), 7);
  EXPECT_EQ(iss.state().reg(8), 5);
  EXPECT_EQ(iss.state().reg(10), 24);
  EXPECT_EQ(iss.state().reg(11), 1);
}

TEST(Iss, R0IsHardwiredZero) {
  ProgramBuilder b;
  b.li(0, 42);       // should be ignored
  b.addi(1, 0, 7);   // r1 = r0 + 7 = 7
  b.halt();
  Iss iss = make_iss();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(0), 0);
  EXPECT_EQ(iss.state().reg(1), 7);
}

TEST(Iss, LoadStoreRoundTrip) {
  ProgramBuilder b;
  b.li(1, 100);   // base address
  b.li(2, -77);
  b.sw(1, 2, 3);  // mem[103] = -77
  b.lw(3, 1, 3);
  b.halt();
  Iss iss = make_iss();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(3), -77);
  EXPECT_EQ(iss.state().peek(103), -77);
}

TEST(Iss, BranchVariants) {
  ProgramBuilder b;
  b.li(1, 5);
  b.li(2, 5);
  b.li(10, 0);
  b.beq(1, 2, "t1");
  b.li(10, 1);  // skipped
  b.label("t1");
  b.li(3, 4);
  b.bne(1, 3, "t2");
  b.li(10, 2);  // skipped
  b.label("t2");
  b.blt(3, 1, "t3");
  b.li(10, 3);  // skipped
  b.label("t3");
  b.bge(1, 2, "t4");
  b.li(10, 4);  // skipped
  b.label("t4");
  b.halt();
  Iss iss = make_iss();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(10), 0);
}

TEST(Iss, MulCheaperWithMacBlock) {
  ProgramBuilder b;
  b.li(1, 3);
  b.li(2, 4);
  for (int i = 0; i < 100; ++i) b.mul(3, 1, 2);
  b.halt();
  const Program p = b.build();
  CoreConfig base;
  CoreConfig mac;
  mac.include_mac_block = true;
  Iss slow(base, {});
  Iss fast(mac, {});
  const auto rs = slow.run(p);
  const auto rf = fast.run(p);
  EXPECT_GT(rs.cycles, rf.cycles);
  EXPECT_EQ(rs.instructions, rf.instructions);
}

TEST(Iss, CacheMissesCountedAndCostCycles) {
  ProgramBuilder b;
  // Stream 256 words: with 4-word lines, ~64 misses cold.
  b.li(1, 0);
  b.li(2, 256);
  b.label("loop");
  b.lw(3, 1, 0);
  b.addi(1, 1, 1);
  b.blt(1, 2, "loop");
  b.halt();
  const Program p = b.build();
  CoreConfig cached;
  Iss iss(cached, {});
  const auto r = iss.run(p);
  EXPECT_NEAR(static_cast<double>(iss.state().dcache_misses), 64.0, 2.0);

  CoreConfig uncached;
  uncached.include_dcache = false;
  Iss iss2(uncached, {});
  const auto r2 = iss2.run(p);
  EXPECT_GT(r.cycles, r2.cycles);  // misses stall the cached core
  EXPECT_EQ(iss2.state().dcache_misses, 0u);
}

TEST(Iss, LoadUseHazardStallsOneCycle) {
  // Dependent: lw r1 immediately feeds the add.
  ProgramBuilder dep;
  dep.li(2, 100);
  dep.lw(1, 2, 0);
  dep.add(3, 1, 1);
  dep.halt();
  // Independent: an unrelated instruction fills the slot.
  ProgramBuilder indep;
  indep.li(2, 100);
  indep.lw(1, 2, 0);
  indep.li(4, 7);
  indep.add(3, 1, 1);
  indep.halt();
  CoreConfig cfg;
  Iss a(cfg, {});
  Iss b(cfg, {});
  const auto ra = a.run(dep.build());
  const auto rb = b.run(indep.build());
  // indep executes one extra 1-cycle li but avoids the 1-cycle stall:
  // identical cycle counts.
  EXPECT_EQ(ra.cycles, rb.cycles);

  CoreConfig no_hazards;
  no_hazards.model_pipeline_hazards = false;
  Iss c(no_hazards, {});
  const auto rc = c.run(dep.build());
  EXPECT_EQ(rc.cycles + 1, ra.cycles);
}

TEST(Iss, StoreAfterLoadAlsoInterlocks) {
  ProgramBuilder b;
  b.li(2, 100);
  b.lw(1, 2, 0);
  b.sw(2, 1, 1);  // stores the just-loaded value
  b.halt();
  CoreConfig with, without;
  without.model_pipeline_hazards = false;
  Iss x(with, {});
  Iss y(without, {});
  EXPECT_EQ(x.run(b.build()).cycles, y.run(b.build()).cycles + 1);
}

TEST(Iss, MaxCycleGuardStopsRunaway) {
  ProgramBuilder b;
  b.label("spin");
  b.jmp("spin");
  Iss iss = make_iss();
  const auto r = iss.run(b.build(), 1000);
  EXPECT_FALSE(r.halted);
  EXPECT_GE(r.cycles, 1000u);
}

TEST(Iss, RegionProfileSumsToTotal) {
  ProgramBuilder b;
  b.region("a");
  b.li(1, 10);
  b.label("l");
  b.addi(1, 1, -1);
  b.region("b");
  b.bne(1, 0, "l");
  b.halt();
  Iss iss = make_iss();
  const auto r = iss.run(b.build());
  std::uint64_t sum = 0;
  for (const auto& [name, prof] : r.by_region) sum += prof.cycles;
  EXPECT_EQ(sum, r.cycles);
}

TEST(Iss, UndefinedCustomThrows) {
  ProgramBuilder b;
  b.custom(3, 1, 2, 3);
  b.halt();
  Iss iss = make_iss();  // no extensions registered
  EXPECT_THROW(iss.run(b.build()), std::runtime_error);
}

// ---------- extensions ----------

TEST(Extensions, CatalogHasUniqueNamesAndSemantics) {
  const auto cat = extension_catalog();
  EXPECT_GE(cat.size(), 6u);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_TRUE(cat[i].semantics);
    EXPECT_GT(cat[i].gate_count, 0.0);
    for (std::size_t j = i + 1; j < cat.size(); ++j) {
      EXPECT_NE(cat[i].name, cat[j].name);
    }
  }
  EXPECT_THROW(find_extension("does-not-exist"), std::invalid_argument);
}

TEST(Extensions, MacLoadMatchesScalarDotProduct) {
  Iss iss(CoreConfig{}, {find_extension(kExtMacLoad)});
  for (int i = 0; i < 8; ++i) {
    iss.state().poke(100 + i, i + 1);   // 1..8
    iss.state().poke(200 + i, 2);       // x2
  }
  ProgramBuilder b;
  b.li(1, 100);
  b.li(2, 200);
  b.li(3, 0);
  b.custom(0, 3, 1, 2);  // 4 lanes
  b.custom(0, 3, 1, 2);  // next 4 lanes
  b.halt();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(3), 2 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
  EXPECT_EQ(iss.state().reg(1), 108);  // post-incremented by 8
}

TEST(Extensions, SqdLoadComputesSquaredDistance) {
  Iss iss(CoreConfig{}, {find_extension(kExtSqdLoad)});
  const int a[4] = {5, 0, -3, 2};
  const int bb[4] = {1, 4, 1, 2};
  int expected = 0;
  for (int i = 0; i < 4; ++i) {
    iss.state().poke(100 + i, a[i]);
    iss.state().poke(200 + i, bb[i]);
    expected += (a[i] - bb[i]) * (a[i] - bb[i]);
  }
  ProgramBuilder b;
  b.li(1, 100);
  b.li(2, 200);
  b.li(3, 0);
  b.custom(0, 3, 1, 2);
  b.halt();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(3), expected);
}

TEST(Extensions, AbsDiffAndMin2) {
  Iss iss(CoreConfig{},
          {find_extension(kExtAbsDiff), find_extension(kExtMin2)});
  ProgramBuilder b;
  b.li(1, 3);
  b.li(2, 10);
  b.custom(0, 4, 1, 2);  // |3-10| = 7
  b.custom(1, 5, 1, 2);  // min = 3
  b.halt();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(4), 7);
  EXPECT_EQ(iss.state().reg(5), 3);
}

TEST(Extensions, SatAddClamps) {
  Iss iss(CoreConfig{}, {find_extension(kExtSatAdd)});
  ProgramBuilder b;
  b.li(1, 30000);
  b.li(2, 30000);
  b.custom(0, 3, 1, 2);
  b.halt();
  iss.run(b.build());
  EXPECT_EQ(iss.state().reg(3), 32767);
}

TEST(Gates, ModelIsMonotoneInFeatures) {
  CoreConfig base;
  const double g0 = total_gates(base, {});
  CoreConfig mac = base;
  mac.include_mac_block = true;
  EXPECT_GT(total_gates(mac, {}), g0);
  CoreConfig big_cache = base;
  big_cache.dcache_lines = 256;
  EXPECT_GT(total_gates(big_cache, {}), g0);
  EXPECT_GT(total_gates(base, {find_extension(kExtMacLoad)}), g0);
  CoreConfig few_regs = base;
  few_regs.num_registers = 16;
  EXPECT_LT(total_gates(few_regs, {}), g0);
}

// ---------- voice-recognition application ----------

TEST(VoiceApp, BaseAndAcceleratedProduceIdenticalResults) {
  VoiceRecognitionApp app;
  std::int32_t base_word = -1, accel_word = -2;
  const RunResult rb = evaluate_app(app, CoreConfig{}, {}, 42, &base_word);
  const RunResult ra = evaluate_app(
      app, CoreConfig{},
      {kExtMacLoad, kExtSqdLoad, kExtAbsDiff, kExtMin2}, 42, &accel_word);
  EXPECT_TRUE(rb.halted);
  EXPECT_TRUE(ra.halted);
  EXPECT_EQ(base_word, accel_word);  // bit-exact decisions
  EXPECT_LT(ra.cycles, rb.cycles);
  EXPECT_LT(ra.instructions, rb.instructions);
}

TEST(VoiceApp, ProfileShowsMacKernelsDominateBaseCore) {
  VoiceRecognitionApp app;
  const RunResult r = evaluate_app(app, CoreConfig{}, {});
  const auto hs = hotspots(r);
  ASSERT_GE(hs.size(), 3u);
  // The MAC-dominated kernels (filterbank/vq) are the bottleneck the
  // identification step must surface; dtw is a secondary region.
  EXPECT_TRUE(hs.front().first == "filterbank" || hs.front().first == "vq");
  double total = 0.0, mac = 0.0;
  for (const auto& [name, prof] : hs) {
    total += static_cast<double>(prof.cycles);
    if (name == "filterbank" || name == "vq") {
      mac += static_cast<double>(prof.cycles);
    }
  }
  EXPECT_GT(mac / total, 0.6);
}

TEST(VoiceApp, RecognizedWordIsValidTemplateIndex) {
  VoiceRecognitionApp app;
  std::int32_t word = -1;
  evaluate_app(app, CoreConfig{}, {}, 7, &word);
  EXPECT_GE(word, 0);
  EXPECT_LT(word,
            static_cast<std::int32_t>(app.params().num_templates));
}

TEST(VoiceApp, SpeedupInPaperBand) {
  // The §3.1 claim: 5x-10x speedup, < 10 custom instructions, < 200k gates.
  VoiceRecognitionApp app;
  const RunResult rb = evaluate_app(app, CoreConfig{}, {});
  CoreConfig tuned;
  tuned.include_mac_block = true;
  tuned.dcache_lines = 256;
  const std::vector<std::string> exts = {kExtMacLoad, kExtSqdLoad,
                                         kExtAbsDiff, kExtDtwCell};
  const RunResult ra = evaluate_app(app, tuned, exts);
  const double speedup = static_cast<double>(rb.cycles) /
                         static_cast<double>(ra.cycles);
  EXPECT_GE(speedup, 4.0);
  EXPECT_LE(speedup, 15.0);
  std::vector<Extension> sel;
  for (const auto& n : exts) sel.push_back(find_extension(n));
  EXPECT_LT(total_gates(tuned, sel), 200000.0);
  EXPECT_LT(sel.size(), 10u);
}

// ---------- design flow (Fig.2) ----------

TEST(DesignFlow, ConvergesUnderBudget) {
  VoiceRecognitionApp app;
  FlowOptions opts;
  const FlowResult fr = run_design_flow(app, opts);
  EXPECT_GT(fr.best.speedup_vs_base, 2.0);
  EXPECT_LE(fr.best.extensions.size(), opts.max_extensions);
  EXPECT_LE(fr.best.gates, opts.gate_budget);
  EXPECT_FALSE(fr.trace.empty());
  // Cycles decrease monotonically along the flow trace.
  std::uint64_t prev = fr.base.result.cycles;
  for (const auto& step : fr.trace) {
    EXPECT_LT(step.cycles, prev);
    prev = step.cycles;
  }
}

// ---------- JPEG encoder: platform reuse across applications (§1) ----------

TEST(JpegApp, BaseAndAcceleratedBitExact) {
  JpegEncoderApp app;
  std::int32_t sym_b = -1, chk_b = -1, sym_a = -2, chk_a = -2;
  const RunResult rb = evaluate_jpeg(app, CoreConfig{}, {}, 42, &sym_b,
                                     &chk_b);
  const RunResult ra = evaluate_jpeg(app, CoreConfig{},
                                     {kExtMacLoad, kExtShiftMac}, 42, &sym_a,
                                     &chk_a);
  EXPECT_TRUE(rb.halted);
  EXPECT_TRUE(ra.halted);
  EXPECT_EQ(sym_b, sym_a);
  EXPECT_EQ(chk_b, chk_a);
  EXPECT_LT(ra.cycles, rb.cycles);
}

TEST(JpegApp, QuantizationCompressesCoefficients) {
  JpegEncoderApp app;
  std::int32_t sym = -1;
  evaluate_jpeg(app, CoreConfig{}, {}, 42, &sym);
  // Far fewer symbols than coefficients: most quantize to zero runs.
  EXPECT_GT(sym, static_cast<std::int32_t>(app.params().blocks));
  EXPECT_LT(sym, static_cast<std::int32_t>(app.params().blocks * 40));
}

TEST(JpegApp, FdctDominatesBaseProfile) {
  JpegEncoderApp app;
  const RunResult r = evaluate_jpeg(app, CoreConfig{}, {});
  const auto hs = hotspots(r);
  ASSERT_GE(hs.size(), 3u);
  EXPECT_EQ(hs.front().first, "fdct");
}

TEST(JpegApp, SameCatalogServesBothApplications) {
  // The §1 platform premise: one extension catalog, many applications.
  JpegEncoderApp jpeg;
  VoiceRecognitionApp voice;
  const RunResult jb = evaluate_jpeg(jpeg, CoreConfig{}, {});
  const RunResult ja = evaluate_jpeg(jpeg, CoreConfig{},
                                     {kExtMacLoad, kExtShiftMac});
  const RunResult vb = evaluate_app(voice, CoreConfig{}, {});
  const RunResult va = evaluate_app(voice, CoreConfig{},
                                    {kExtMacLoad, kExtSqdLoad});
  EXPECT_GT(static_cast<double>(jb.cycles) / static_cast<double>(ja.cycles),
            1.5);
  EXPECT_GT(static_cast<double>(vb.cycles) / static_cast<double>(va.cycles),
            2.0);
}

TEST(JpegApp, GenericFlowCustomizesJpegCore) {
  JpegEncoderApp app;
  FlowOptions opts;
  const FlowResult fr = run_design_flow(
      [&app](const CoreConfig& cfg, const std::vector<std::string>& exts) {
        return evaluate_jpeg(app, cfg, exts);
      },
      opts);
  EXPECT_GT(fr.best.speedup_vs_base, 1.5);
  EXPECT_LE(fr.best.gates, opts.gate_budget);
  // The flow should have picked mac.load (fdct dominates).
  bool has_mac = false;
  for (const auto& e : fr.best.extensions) has_mac |= e == kExtMacLoad;
  EXPECT_TRUE(has_mac);
}

TEST(JpegApp, RegionProfileCoversWholeProgram) {
  JpegEncoderApp app;
  const RunResult r = evaluate_jpeg(app, CoreConfig{}, {});
  std::uint64_t sum = 0;
  for (const auto& [name, prof] : r.by_region) sum += prof.cycles;
  EXPECT_EQ(sum, r.cycles);
  EXPECT_EQ(r.by_region.size(), 3u);  // fdct, quant, rle
  EXPECT_TRUE(r.by_region.count("fdct"));
  EXPECT_TRUE(r.by_region.count("quant"));
  EXPECT_TRUE(r.by_region.count("rle"));
}

TEST(JpegApp, MoreBlocksMoreWork) {
  JpegEncoderApp::Params small_p, large_p;
  small_p.blocks = 16;
  large_p.blocks = 64;
  const RunResult rs = evaluate_jpeg(JpegEncoderApp{small_p}, CoreConfig{}, {});
  const RunResult rl = evaluate_jpeg(JpegEncoderApp{large_p}, CoreConfig{}, {});
  // Work scales roughly linearly in the block count.
  const double ratio = static_cast<double>(rl.cycles) /
                       static_cast<double>(rs.cycles);
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(JpegApp, RejectsBadParams) {
  JpegEncoderApp::Params p;
  p.blocks = 0;
  EXPECT_THROW(JpegEncoderApp{p}, std::invalid_argument);
  p.blocks = 500;
  EXPECT_THROW(JpegEncoderApp{p}, std::invalid_argument);
}

TEST(DesignFlow, EnergyObjectiveMinimizesEnergy) {
  VoiceRecognitionApp app;
  FlowOptions cyc, nrg;
  nrg.objective = FlowObjective::kEnergy;
  const FlowResult rc = run_design_flow(app, cyc);
  const FlowResult re = run_design_flow(app, nrg);
  // The energy-driven flow never ends up with more energy than the
  // cycle-driven one, and both stay within the constraints.
  EXPECT_LE(re.best.result.energy_pj, rc.best.result.energy_pj * 1.0001);
  EXPECT_LE(re.best.gates, nrg.gate_budget);
  EXPECT_LT(re.best.energy_ratio_vs_base, 0.6);
}

TEST(DesignFlow, TraceGatesStayWithinBudget) {
  VoiceRecognitionApp app;
  FlowOptions opts;
  opts.gate_budget = 120000.0;  // tighter budget -> fewer moves
  const FlowResult fr = run_design_flow(app, opts);
  for (const auto& step : fr.trace) EXPECT_LE(step.gates, opts.gate_budget);
}

}  // namespace
