// Island-model exploration (core/islands.hpp): option contracts, thread- and
// scheduling-invariance of the fingerprints, and checkpoint/resume identity
// (DESIGN.md §5l).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "core/islands.hpp"
#include "core/platform.hpp"
#include "exec/error.hpp"
#include "noc/taskgraph.hpp"

namespace {

using holms::sim::Rng;
using namespace holms::core;

Application island_app() {
  Application app;
  app.name = "island";
  Rng rng(11);
  app.graph = holms::noc::random_graph(14, rng, 6e5);
  app.qos.period_s = 0.05;
  return app;
}

IslandOptions small_opts(std::size_t islands, std::size_t epochs) {
  IslandOptions opts;
  opts.islands = islands;
  opts.epochs = epochs;
  opts.sa.iterations = 400;
  return opts;
}

std::uint64_t run_fingerprint(const Application& app, const Platform& plat,
                              IslandOptions opts, std::uint64_t seed = 42) {
  Rng rng(seed);
  IslandExplorer ex(app, plat, rng, std::move(opts));
  while (ex.step()) {
  }
  return ex.result_fingerprint();
}

// ---- option contracts (C001): every dead or invalid knob throws typed ------

TEST(IslandOptions, ZeroIslandsThrowsInvalidArgument) {
  IslandOptions opts = small_opts(0, 2);
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, ZeroEpochsThrowsInvalidArgument) {
  IslandOptions opts = small_opts(2, 2);
  opts.epochs = 0;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, ZeroMigrationIntervalThrowsInvalidArgument) {
  IslandOptions opts = small_opts(2, 2);
  opts.migration_interval = 0;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, NoGenerationJobsIsDeadConfig) {
  IslandOptions opts = small_opts(2, 2);
  opts.sa_runs_per_epoch = 0;
  opts.probes_per_epoch = 0;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, CheckpointEveryWithoutPathIsDeadConfig) {
  IslandOptions opts = small_opts(2, 2);
  opts.checkpoint_every = 1;
  opts.checkpoint_path.clear();
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, NestedSaKnobsAreValidated) {
  IslandOptions opts = small_opts(2, 2);
  opts.sa.iterations = 0;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(IslandOptions, FaultScenarioContractMirrorsExplore) {
  IslandOptions opts = small_opts(2, 2);
  FaultScenario fs;
  fs.replicas = 0;
  opts.faults = &fs;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(ExploreOptions, SloFloorWithoutWindowIsDeadConfig) {
  ExploreOptions opts;
  FaultScenario fs;
  fs.min_slo_fraction = 0.5;
  fs.slo_window = 0;  // the floor can never apply
  opts.faults = &fs;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

TEST(ExploreOptions, SloWindowWithoutDurationIsDeadConfig) {
  ExploreOptions opts;
  FaultScenario fs;
  fs.slo_window = 8;
  fs.ambient.duration_s = 0.0;  // no periods, so no windows to score
  opts.faults = &fs;
  EXPECT_THROW(opts.validate(), holms::InvalidArgument);
}

// ---- search behaviour ------------------------------------------------------

TEST(Islands, FindsFeasibleDesignAndTrajectoryIsMonotone) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  Rng rng(42);
  IslandExplorer ex(app, plat, rng, small_opts(2, 3));
  while (ex.step()) {
  }
  const ExploreResult res = ex.result();
  EXPECT_TRUE(res.found_feasible);
  EXPECT_FALSE(res.pareto.empty());
  EXPECT_EQ(ex.epoch(), 3u);
  ASSERT_EQ(ex.trajectory().size(), 3u);
  for (std::size_t i = 1; i < ex.trajectory().size(); ++i) {
    EXPECT_LE(ex.trajectory()[i].second, ex.trajectory()[i - 1].second);
    EXPECT_GT(ex.trajectory()[i].first, ex.trajectory()[i - 1].first);
  }
}

TEST(Islands, ExploreIslandsWrapperMatchesManualLoop) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  Rng r1(42), r2(42);
  IslandExplorer ex(app, plat, r1, small_opts(2, 3));
  while (ex.step()) {
  }
  const ExploreResult manual = ex.result();
  const ExploreResult wrapped = explore_islands(app, plat, r2,
                                                small_opts(2, 3));
  EXPECT_EQ(manual.evaluated, wrapped.evaluated);
  EXPECT_EQ(manual.found_feasible, wrapped.found_feasible);
  EXPECT_EQ(manual.best.mapping, wrapped.best.mapping);
  EXPECT_EQ(manual.best.eval.total_energy_j, wrapped.best.eval.total_energy_j);
}

// The core determinism claim: for each island count, the fingerprint is
// bitwise invariant to the worker-thread count (1 / 2 / 4 / 7), and the
// consumption of the caller's RNG does not depend on either knob.
TEST(Islands, FingerprintInvariantToThreadCount) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  for (const std::size_t islands : {1u, 2u, 4u}) {
    std::uint64_t reference = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
      IslandOptions opts = small_opts(islands, 2);
      opts.threads = threads;
      const std::uint64_t fp = run_fingerprint(app, plat, opts);
      if (threads == 1) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference)
            << "islands=" << islands << " threads=" << threads;
      }
    }
  }
}

TEST(Islands, FingerprintDistinguishesIslandCounts) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  const std::uint64_t k1 = run_fingerprint(app, plat, small_opts(1, 2));
  const std::uint64_t k2 = run_fingerprint(app, plat, small_opts(2, 2));
  const std::uint64_t k4 = run_fingerprint(app, plat, small_opts(4, 2));
  EXPECT_NE(k1, k2);
  EXPECT_NE(k2, k4);
}

TEST(Islands, ConsumesExactlyOneRngDraw) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  Rng a(9), b(9);
  IslandExplorer ex(app, plat, a, small_opts(2, 2));
  (void)b.bits();
  EXPECT_EQ(a.bits(), b.bits());
}

// ---- checkpoint / resume ---------------------------------------------------

TEST(Islands, ResumeReproducesUninterruptedRunBitwise) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  const IslandOptions opts = small_opts(2, 4);

  Rng full_rng(42);
  IslandExplorer full(app, plat, full_rng, opts);
  full.step(4);
  const ExploreResult want = full.result();

  Rng part_rng(42);
  IslandExplorer part(app, plat, part_rng, opts);
  part.step(2);
  const std::vector<std::uint8_t> blob = part.checkpoint();

  IslandExplorer resumed = IslandExplorer::resume(app, plat, opts, blob);
  EXPECT_EQ(resumed.epoch(), 2u);
  resumed.step(2);

  EXPECT_EQ(resumed.result_fingerprint(), full.result_fingerprint());
  const ExploreResult got = resumed.result();
  EXPECT_EQ(got.evaluated, want.evaluated);
  EXPECT_EQ(got.best.mapping, want.best.mapping);
  EXPECT_EQ(got.best.use_dvs, want.best.use_dvs);
  EXPECT_EQ(got.best.eval.total_energy_j, want.best.eval.total_energy_j);
  ASSERT_EQ(got.pareto.size(), want.pareto.size());
  for (std::size_t i = 0; i < got.pareto.size(); ++i) {
    EXPECT_EQ(got.pareto[i].mapping, want.pareto[i].mapping);
    EXPECT_EQ(got.pareto[i].use_dvs, want.pareto[i].use_dvs);
    EXPECT_EQ(got.pareto[i].eval.total_energy_j,
              want.pareto[i].eval.total_energy_j);
  }
}

TEST(Islands, ResumeWithDifferentThreadCountIsStillBitwise) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandOptions opts = small_opts(2, 4);

  Rng full_rng(42);
  IslandExplorer full(app, plat, full_rng, opts);
  full.step(4);

  opts.threads = 4;
  Rng part_rng(42);
  IslandExplorer part(app, plat, part_rng, opts);
  part.step(2);
  const std::vector<std::uint8_t> blob = part.checkpoint();

  IslandOptions resume_opts = small_opts(2, 4);
  resume_opts.threads = 7;  // thread knobs may differ across a resume
  IslandExplorer resumed =
      IslandExplorer::resume(app, plat, resume_opts, blob);
  resumed.step(2);
  EXPECT_EQ(resumed.result_fingerprint(), full.result_fingerprint());
}

TEST(Islands, CorruptingAnyByteThrowsRuntimeError) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  const IslandOptions opts = small_opts(2, 2);
  Rng rng(42);
  IslandExplorer ex(app, plat, rng, opts);
  ex.step(1);
  const std::vector<std::uint8_t> blob = ex.checkpoint();

  // Flip one byte at a spread of positions — header, body, trailing digest.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{9}, blob.size() / 2, blob.size() - 1}) {
    std::vector<std::uint8_t> bad = blob;
    bad[pos] ^= 0x40;
    EXPECT_THROW(IslandExplorer::resume(app, plat, opts, bad),
                 holms::RuntimeError)
        << "flipped byte " << pos;
  }
  // Truncation is corruption too.
  std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 8);
  EXPECT_THROW(IslandExplorer::resume(app, plat, opts, truncated),
               holms::RuntimeError);
}

TEST(Islands, ResumeRejectsMismatchedPlatformOptionsAndScenario) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  const IslandOptions opts = small_opts(2, 2);
  Rng rng(42);
  IslandExplorer ex(app, plat, rng, opts);
  ex.step(1);
  const std::vector<std::uint8_t> blob = ex.checkpoint();

  const Platform other_plat = Platform::homogeneous(4, 4, asip_tile());
  EXPECT_THROW(IslandExplorer::resume(app, other_plat, opts, blob),
               holms::RuntimeError);

  Application other_app = island_app();
  other_app.qos.period_s = 0.07;
  EXPECT_THROW(IslandExplorer::resume(other_app, plat, opts, blob),
               holms::RuntimeError);

  IslandOptions other_opts = small_opts(2, 2);
  other_opts.sa.iterations = 401;
  EXPECT_THROW(IslandExplorer::resume(app, plat, other_opts, blob),
               holms::RuntimeError);

  IslandOptions fault_opts = small_opts(2, 2);
  FaultScenario fs;
  fault_opts.faults = &fs;
  EXPECT_THROW(IslandExplorer::resume(app, plat, fault_opts, blob),
               holms::RuntimeError);
}

TEST(Islands, SaveAndResumeFromFileRoundTrips) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  const IslandOptions opts = small_opts(2, 3);
  const std::string path = testing::TempDir() + "holms_island_test.ckpt";

  Rng full_rng(42);
  IslandExplorer full(app, plat, full_rng, opts);
  full.step(3);

  Rng part_rng(42);
  IslandExplorer part(app, plat, part_rng, opts);
  part.step(1);
  part.save_checkpoint(path);

  IslandExplorer resumed =
      IslandExplorer::resume_from_file(app, plat, opts, path);
  resumed.step(2);
  EXPECT_EQ(resumed.result_fingerprint(), full.result_fingerprint());

  EXPECT_THROW(IslandExplorer::resume_from_file(app, plat, opts,
                                                path + ".does-not-exist"),
               holms::RuntimeError);
}

TEST(Islands, PeriodicCheckpointsAreWrittenAtEpochBarriers) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  IslandOptions opts = small_opts(2, 4);
  opts.checkpoint_every = 2;
  opts.checkpoint_path = testing::TempDir() + "holms_island_periodic.ckpt";

  Rng full_rng(42);
  IslandExplorer full(app, plat, full_rng, small_opts(2, 4));
  full.step(4);

  Rng rng(42);
  IslandExplorer ex(app, plat, rng, opts);
  ex.step(2);  // epoch 2 barrier writes the blob

  IslandExplorer resumed = IslandExplorer::resume_from_file(
      app, plat, small_opts(2, 4), opts.checkpoint_path);
  EXPECT_EQ(resumed.epoch(), 2u);
  resumed.step(2);
  EXPECT_EQ(resumed.result_fingerprint(), full.result_fingerprint());
}

TEST(Islands, FaultScenarioRunsSurviveCheckpointRoundTrip) {
  const Application app = island_app();
  const Platform plat = Platform::homogeneous(4, 4);
  FaultScenario fs;
  fs.replicas = 2;
  fs.ambient.duration_s = 2.0;
  fs.ambient.tile_mtbf_s = 4.0;
  IslandOptions opts = small_opts(2, 3);
  opts.faults = &fs;

  Rng full_rng(42);
  IslandExplorer full(app, plat, full_rng, opts);
  full.step(3);

  Rng part_rng(42);
  IslandExplorer part(app, plat, part_rng, opts);
  part.step(1);
  const std::vector<std::uint8_t> blob = part.checkpoint();
  IslandExplorer resumed = IslandExplorer::resume(app, plat, opts, blob);
  resumed.step(2);
  EXPECT_EQ(resumed.result_fingerprint(), full.result_fingerprint());
}

}  // namespace
