// Tests for holms::serve (DESIGN.md §5h): legacy-vs-FOM bitwise equivalence
// for FGS and MPEG-2 sessions, ServiceManager thread-count invariance,
// admission control, and fault-driven load shedding.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "exec/error.hpp"
#include "exec/thread_pool.hpp"
#include "fault/schedule.hpp"
#include "serve/service.hpp"
#include "sim/simulator.hpp"
#include "stream/mpeg2.hpp"
#include "streaming/fgs.hpp"
#include "traffic/video.hpp"

namespace {

using holms::dvfs::Processor;
using holms::serve::ServeOptions;
using holms::serve::ServeReport;
using holms::serve::ServiceManager;
using holms::sim::Rng;
using namespace holms::streaming;

Processor make_cpu() {
  return Processor(holms::dvfs::xscale_points(), holms::dvfs::PowerModel{});
}

void expect_fgs_bitwise_equal(const FgsReport& a, const FgsReport& b) {
  EXPECT_EQ(a.mean_psnr_db, b.mean_psnr_db);
  EXPECT_EQ(a.min_psnr_db, b.min_psnr_db);
  EXPECT_EQ(a.client_rx_energy_j, b.client_rx_energy_j);
  EXPECT_EQ(a.client_cpu_energy_j, b.client_cpu_energy_j);
  EXPECT_EQ(a.client_total_energy_j, b.client_total_energy_j);
  EXPECT_EQ(a.mean_normalized_load, b.mean_normalized_load);
  EXPECT_EQ(a.wasted_rx_fraction, b.wasted_rx_fraction);
  EXPECT_EQ(a.base_layer_misses, b.base_layer_misses);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.mean_enhancement_shed, b.mean_enhancement_shed);
}

// ---------- FGS session FOM ----------

TEST(FgsFom, SimulatorDrivenSessionMatchesLegacyBitwise) {
  const holms::fault::FaultSchedule sched =
      holms::fault::FaultSchedule::from_trace(
          {{10.0, holms::fault::FaultKind::kFail, holms::fault::Target::kNode,
            0},
           {30.0, holms::fault::FaultKind::kRepair,
            holms::fault::Target::kNode, 0}});
  for (FgsPolicy policy : {FgsPolicy::kNonAdaptive, FgsPolicy::kClientFeedback,
                           FgsPolicy::kGracefulDegradation}) {
    const FgsConfig cfg;
    Processor cpu_a = make_cpu();
    ChannelTrace ch_a(Rng(42));
    SlotLossTrace loss_a(&sched, cfg.slot_s, 0.0, 0.35);
    const FgsReport legacy =
        run_fgs_session(policy, cfg, cpu_a, ch_a, 100, &loss_a);

    // Same session as a state machine parked on a DES kernel between slots.
    Processor cpu_b = make_cpu();
    ChannelTrace ch_b(Rng(42));
    SlotLossTrace loss_b(&sched, cfg.slot_s, 0.0, 0.35);
    FgsSessionFom fom(policy, cfg, cpu_b, ch_b, 100, &loss_b);
    holms::sim::Simulator sim;
    std::function<void()> pump = [&] {
      const double d = fom.step();
      if (d >= 0.0) sim.schedule_in(d, [&pump] { pump(); });
    };
    sim.schedule_at(0.0, [&pump] { pump(); });
    sim.run(std::numeric_limits<double>::infinity());

    ASSERT_TRUE(fom.done());
    // The final slot starts at (slots-1) * slot_s.
    EXPECT_DOUBLE_EQ(sim.now(), 99 * cfg.slot_s);
    expect_fgs_bitwise_equal(fom.report(), legacy);
  }
}

TEST(FgsFom, ZeroSlotSessionFinishesOnFirstStep) {
  const FgsConfig cfg;
  Processor cpu = make_cpu();
  ChannelTrace ch(Rng(1));
  FgsSessionFom fom(FgsPolicy::kClientFeedback, cfg, cpu, ch, 0);
  EXPECT_THROW(fom.report(), holms::RuntimeError);
  EXPECT_LT(fom.step(), 0.0);
  ASSERT_TRUE(fom.done());
  EXPECT_EQ(fom.report().slots, 0u);
  EXPECT_EQ(fom.report().mean_psnr_db, 0.0);
}

TEST(FgsFom, StepYieldsSlotPeriodAndExposesSlotTelemetry) {
  FgsConfig cfg;
  cfg.slot_s = 0.25;
  Processor cpu = make_cpu();
  ChannelTrace ch(Rng(3));
  FgsSessionFom fom(FgsPolicy::kClientFeedback, cfg, cpu, ch, 2);
  EXPECT_EQ(fom.step(), FgsSessionFom::kAgain);  // kInit
  EXPECT_EQ(fom.phase(), FgsFomPhase::kSlot);
  EXPECT_EQ(fom.step(), cfg.slot_s);  // slot 0 done, park until next slot
  EXPECT_EQ(fom.slots_done(), 1u);
  EXPECT_GT(fom.last_psnr_db(), 0.0);
  EXPECT_GT(fom.last_load(), 0.0);
  EXPECT_LT(fom.step(), 0.0);  // final slot -> finished
  EXPECT_TRUE(fom.done());
}

// ---------- MPEG-2 session FOM ----------

TEST(Mpeg2Fom, ExternalSimulatorSessionMatchesLegacyBitwise) {
  for (const bool two_cpus : {false, true}) {
    holms::stream::Mpeg2Config cfg;
    cfg.two_cpus = two_cpus;
    const holms::traffic::VideoTraceGenerator::Params vp;

    holms::traffic::VideoTraceGenerator video_a(vp, Rng(7));
    const holms::stream::Mpeg2Report legacy =
        holms::stream::run_mpeg2_decoder(video_a, 120, cfg);

    holms::traffic::VideoTraceGenerator video_b(vp, Rng(7));
    holms::sim::Simulator sim;
    holms::stream::Mpeg2SessionFom fom(sim, video_b, 120, cfg);
    EXPECT_GT(fom.step(), 0.0);  // build returns the feed+drain horizon
    sim.run(fom.horizon());
    EXPECT_LT(fom.step(), 0.0);
    ASSERT_TRUE(fom.done());

    const holms::stream::Mpeg2Report& r = fom.report();
    EXPECT_EQ(r.mean_b2, legacy.mean_b2);
    EXPECT_EQ(r.mean_b3, legacy.mean_b3);
    EXPECT_EQ(r.mean_b4, legacy.mean_b4);
    EXPECT_EQ(r.mean_frame_latency, legacy.mean_frame_latency);
    EXPECT_EQ(r.jitter, legacy.jitter);
    EXPECT_EQ(r.fps_out, legacy.fps_out);
    EXPECT_EQ(r.cpu0_utilization, legacy.cpu0_utilization);
    EXPECT_EQ(r.cpu1_utilization, legacy.cpu1_utilization);
    EXPECT_EQ(r.vld_blocked_time, legacy.vld_blocked_time);
    EXPECT_EQ(r.frames_in, legacy.frames_in);
    EXPECT_EQ(r.frames_out, legacy.frames_out);
    EXPECT_EQ(r.frames_dropped, legacy.frames_dropped);
  }
}

TEST(Mpeg2Fom, AdmissionTimeOffsetDoesNotChangeTheSession) {
  const holms::stream::Mpeg2Config cfg;
  const holms::traffic::VideoTraceGenerator::Params vp;

  holms::traffic::VideoTraceGenerator video_a(vp, Rng(11));
  const holms::stream::Mpeg2Report at_zero =
      holms::stream::run_mpeg2_decoder(video_a, 90, cfg);

  // The same session admitted mid-run on a shared kernel: all its
  // statistics are relative to its own start time.
  holms::traffic::VideoTraceGenerator video_b(vp, Rng(11));
  holms::sim::Simulator sim;
  holms::stream::Mpeg2SessionFom fom(sim, video_b, 90, cfg);
  const double offset = 7.25;
  sim.schedule_at(offset, [&fom] { fom.step(); });
  sim.run(offset + fom.horizon());
  fom.step();
  ASSERT_TRUE(fom.done());

  const holms::stream::Mpeg2Report& r = fom.report();
  EXPECT_EQ(r.frames_in, at_zero.frames_in);
  EXPECT_EQ(r.frames_out, at_zero.frames_out);
  EXPECT_EQ(r.frames_dropped, at_zero.frames_dropped);
  // Time-shifted floating-point sums may differ in the last ulp.
  EXPECT_NEAR(r.mean_frame_latency, at_zero.mean_frame_latency, 1e-9);
  EXPECT_NEAR(r.mean_b2, at_zero.mean_b2, 1e-9);
  EXPECT_NEAR(r.cpu0_utilization, at_zero.cpu0_utilization, 1e-9);
}

// ---------- ServiceManager ----------

ServeReport run_mixed_service(std::size_t threads, std::uint64_t seed) {
  ServeOptions o;
  o.localities = 5;
  o.threads = threads;
  o.max_sessions = 500;
  o.seed = seed;
  ServiceManager m(o);
  const FgsConfig cfg;
  const FgsPolicy policies[] = {FgsPolicy::kNonAdaptive,
                                FgsPolicy::kClientFeedback,
                                FgsPolicy::kGracefulDegradation};
  for (std::size_t i = 0; i < 120; ++i) {
    m.add_fgs_session(policies[i % 3], cfg, 40);
  }
  const holms::stream::Mpeg2Config mcfg;
  const holms::traffic::VideoTraceGenerator::Params vp;
  for (std::size_t i = 0; i < 6; ++i) {
    m.add_mpeg2_session(mcfg, vp, 30);
  }
  return m.run(25.0);
}

TEST(Serve, AggregateReportIsThreadCountInvariant) {
  const ServeReport base = run_mixed_service(1, 99);
  EXPECT_EQ(base.sessions_admitted, 126u);
  EXPECT_EQ(base.sessions_completed, 126u);
  EXPECT_GT(base.events_dispatched, 120u * 40u);
  EXPECT_EQ(base.slot_psnr_db.count(), 120u * 40u);

  // The locality count (5) — not the worker count — defines the partition,
  // so any pool size reproduces the same report, fingerprint and all.
  // env_threads folds the CI HOLMS_THREADS matrix into the sweep.
  for (std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{7},
        holms::exec::env_threads(3)}) {
    const ServeReport r = run_mixed_service(threads, 99);
    EXPECT_EQ(r.fingerprint(), base.fingerprint()) << threads << " threads";
    EXPECT_EQ(r.events_dispatched, base.events_dispatched);
    EXPECT_EQ(r.session_psnr_db.mean(), base.session_psnr_db.mean());
    EXPECT_EQ(r.session_energy_j.sum(), base.session_energy_j.sum());
    EXPECT_EQ(r.mpeg2_frames_out, base.mpeg2_frames_out);
    EXPECT_EQ(r.slot_psnr_db.p99(), base.slot_psnr_db.p99());
  }

  // And a different seed is a genuinely different service.
  EXPECT_NE(run_mixed_service(1, 100).fingerprint(), base.fingerprint());
}

// A homogeneous FGS-only service (no slicing, no quantum) takes the wave
// scheduler fast path; slicing forces the event-driven kernel.  Both must
// produce the identical report, fingerprint and all.
ServeReport run_fgs_only_service(std::size_t threads, double slice_s) {
  ServeOptions o;
  o.localities = 4;
  o.threads = threads;
  o.max_sessions = 200;
  o.seed = 7;
  ServiceManager m(o);
  const FgsConfig cfg;
  const FgsPolicy policies[] = {FgsPolicy::kNonAdaptive,
                                FgsPolicy::kClientFeedback,
                                FgsPolicy::kGracefulDegradation};
  for (std::size_t i = 0; i < 60; ++i) {
    m.add_fgs_session(policies[i % 3], cfg, 30);
  }
  m.add_fgs_session(FgsPolicy::kClientFeedback, cfg, 0);  // init-only session
  return m.run(30.0, slice_s);
}

TEST(Serve, WaveSchedulerMatchesEventDrivenPathBitwise) {
  const ServeReport wave = run_fgs_only_service(1, 0.0);
  const ServeReport des = run_fgs_only_service(1, 1.0);
  EXPECT_EQ(wave.fingerprint(), des.fingerprint());
  EXPECT_EQ(wave.events_dispatched, des.events_dispatched);
  EXPECT_EQ(wave.sessions_completed, 61u);
  EXPECT_EQ(wave.session_psnr_db.mean(), des.session_psnr_db.mean());
  EXPECT_EQ(wave.session_energy_j.sum(), des.session_energy_j.sum());
  EXPECT_EQ(wave.slot_psnr_db.count(), 60u * 30u);
  EXPECT_EQ(wave.dispatch_lag_s.count(), 0u);

  // The wave path is thread-count invariant like the event-driven one.
  for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    EXPECT_EQ(run_fgs_only_service(threads, 0.0).fingerprint(),
              wave.fingerprint())
        << threads << " threads";
  }
}

TEST(Serve, AdmissionCapRejectsBeyondMaxSessions) {
  ServeOptions o;
  o.localities = 2;
  o.threads = 1;
  o.max_sessions = 10;
  ServiceManager m(o);
  const FgsConfig cfg;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    if (m.add_fgs_session(FgsPolicy::kClientFeedback, cfg, 5) ==
        ServiceManager::kRejected) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 5u);
  EXPECT_EQ(m.active_sessions(), 10u);
  const ServeReport r = m.run(5.0);
  EXPECT_EQ(r.sessions_offered, 15u);
  EXPECT_EQ(r.sessions_admitted, 10u);
  EXPECT_EQ(r.sessions_rejected, 5u);
  EXPECT_EQ(r.sessions_completed, 10u);
}

TEST(Serve, WatermarkForcesLateAdmissionsOntoGracefulLadder) {
  ServeOptions o;
  o.localities = 2;
  o.threads = 1;
  o.max_sessions = 10;
  o.degrade_watermark = 0.5;
  ServiceManager m(o);
  const FgsConfig cfg;
  for (std::size_t i = 0; i < 10; ++i) {
    m.add_fgs_session(FgsPolicy::kClientFeedback, cfg, 5);
  }
  const ServeReport r = m.run(5.0);
  EXPECT_EQ(r.sessions_degraded, 5u);  // sessions 5..9 were over watermark

  // Sessions that already run the graceful ladder are not re-counted.
  ServiceManager m2(o);
  for (std::size_t i = 0; i < 10; ++i) {
    m2.add_fgs_session(FgsPolicy::kGracefulDegradation, cfg, 5);
  }
  EXPECT_EQ(m2.run(5.0).sessions_degraded, 0u);
}

TEST(Serve, NodeFaultsDriveTheSheddingLadder) {
  const holms::fault::FaultSchedule sched =
      holms::fault::FaultSchedule::from_trace(
          {{0.0, holms::fault::FaultKind::kFail, holms::fault::Target::kNode,
            0}});
  auto build = [&](bool faulted) {
    ServeOptions o;
    o.localities = 2;
    o.threads = 1;
    o.fault_loss = 0.4;
    o.seed = 5;
    auto m = std::make_unique<ServiceManager>(o);
    if (faulted) m->attach_fault_schedule(&sched);
    const FgsConfig cfg;
    for (std::size_t i = 0; i < 8; ++i) {
      m->add_fgs_session(FgsPolicy::kGracefulDegradation, cfg, 60);
    }
    return m;
  };

  const ServeReport faulty = build(true)->run(35.0);
  const ServeReport healthy = build(false)->run(35.0);
  EXPECT_EQ(faulty.faults_in_window, 1u);
  EXPECT_EQ(healthy.faults_in_window, 0u);
  // The permanently faulted locality 0 (even session ids) sheds enhancement
  // hard; locality 1 stays clean.
  EXPECT_GT(faulty.session_shed.max(), 0.5);
  EXPECT_EQ(healthy.session_shed.max(), 0.0);
  EXPECT_LT(faulty.session_psnr_db.mean(), healthy.session_psnr_db.mean());

  // The fault feed is part of the admission contract: arming it after
  // sessions exist would silently miss them.
  ServeOptions o;
  ServiceManager late(o);
  late.add_fgs_session(FgsPolicy::kClientFeedback, FgsConfig{}, 1);
  EXPECT_THROW(late.attach_fault_schedule(&sched), holms::RuntimeError);
}

TEST(Serve, DispatchQuantumBatchesStepsAndRecordsLag) {
  auto run_with_quantum = [](double q) {
    ServeOptions o;
    o.localities = 2;
    o.threads = 1;
    o.dispatch_quantum_s = q;
    ServiceManager m(o);
    FgsConfig cfg;
    cfg.slot_s = 0.5;
    for (std::size_t i = 0; i < 10; ++i) {
      m.add_fgs_session(FgsPolicy::kClientFeedback, cfg, 20);
    }
    return m.run(20.0);
  };
  const ServeReport smooth = run_with_quantum(0.0);
  EXPECT_EQ(smooth.dispatch_lag_s.count(), 0u);

  const ServeReport coarse = run_with_quantum(0.75);
  EXPECT_GT(coarse.dispatch_lag_s.count(), 0u);
  EXPECT_LE(coarse.dispatch_lag_s.max(), 0.75);
  EXPECT_EQ(coarse.sessions_completed, 10u);
  // Quantized dispatch is still deterministic.
  EXPECT_EQ(run_with_quantum(0.75).fingerprint(), coarse.fingerprint());
}

TEST(Serve, ValidatesOptionsAndIsOneShot) {
  ServeOptions bad;
  bad.localities = 0;
  EXPECT_THROW(ServiceManager{bad}, holms::InvalidArgument);
  bad = ServeOptions{};
  bad.degrade_watermark = 0.0;
  EXPECT_THROW(ServiceManager{bad}, holms::InvalidArgument);
  bad = ServeOptions{};
  bad.dispatch_quantum_s = -1.0;
  EXPECT_THROW(ServiceManager{bad}, holms::InvalidArgument);

  ServeOptions o;
  o.localities = 1;
  o.threads = 1;
  ServiceManager m(o);
  m.add_fgs_session(FgsPolicy::kClientFeedback, FgsConfig{}, 2);
  m.run(2.0);
  EXPECT_THROW(m.run(2.0), holms::RuntimeError);
}

}  // namespace
