// Unit tests for the DES kernel, RNG and statistics substrate (holms::sim).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exec/error.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace {

using holms::sim::EventId;
using holms::sim::Histogram;
using holms::sim::OnlineStats;
using holms::sim::QuantileSketch;
using holms::sim::Rng;
using holms::sim::Simulator;
using holms::sim::Ticker;
using holms::sim::TimeWeightedStats;

// ---------- Simulator ----------

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsKeepInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const std::size_t n = sim.run(2.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(0.5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelUnknownIsNoop) {
  Simulator sim;
  sim.cancel(EventId{});      // null id
  sim.cancel(EventId{999});   // never scheduled
  sim.schedule_at(1.0, [] {});
  EXPECT_NO_THROW(sim.run());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_in(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, StopRequestHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Ticker, FiresPeriodicallyUntilStopped) {
  Simulator sim;
  int ticks = 0;
  Ticker t(sim, 1.0, [&] { return ++ticks < 3; });
  t.start(0.5);
  sim.run(10.0);
  EXPECT_EQ(ticks, 3);  // 0.5, 1.5, 2.5 then callback returned false
}

TEST(Ticker, StopCancelsPending) {
  Simulator sim;
  int ticks = 0;
  Ticker t(sim, 1.0, [&] {
    ++ticks;
    return true;
  });
  t.start(1.0);
  sim.schedule_at(2.5, [&] { t.stop(); });
  sim.run(10.0);
  EXPECT_EQ(ticks, 2);
}

// ---------- Rng ----------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, ForkDecouplesStreams) {
  Rng a(123);
  Rng child = a.fork();
  // Child's draws do not perturb parent determinism.
  Rng reference(123);
  (void)reference.bits();  // the fork consumed one parent draw
  for (int i = 0; i < 10; ++i) (void)child.bits();
  EXPECT_EQ(a.bits(), reference.bits());
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(Rng, ParetoMeanMatchesFormula) {
  Rng rng(7);
  OnlineStats s;
  const double alpha = 2.5, xm = 1.0;
  for (int i = 0; i < 200000; ++i) s.add(rng.pareto(alpha, xm));
  EXPECT_NEAR(s.mean(), alpha * xm / (alpha - 1.0), 0.03);
}

TEST(Rng, ParetoSupportsLowerBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    lo = lo || v == 2;
    hi = hi || v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(21);
  OnlineStats s;
  const double mu = 0.5, sigma = 0.4;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(s.mean(), std::exp(mu + sigma * sigma / 2.0), 0.02);
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  Rng rng(22);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(static_cast<double>(rng.poisson(6.5)));
  }
  EXPECT_NEAR(s.mean(), 6.5, 0.05);
  EXPECT_NEAR(s.variance(), 6.5, 0.2);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, GeometricMeanMatchesFormula) {
  Rng rng(23);
  OnlineStats s;
  const double p = 0.25;
  for (int i = 0; i < 100000; ++i) {
    s.add(static_cast<double>(rng.geometric(p)));
  }
  EXPECT_NEAR(s.mean(), (1.0 - p) / p, 0.05);
}

TEST(Simulator, PendingTracksLiveEvents) {
  Simulator sim;
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
}

// ---------- OnlineStats ----------

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ---------- TimeWeightedStats ----------

TEST(TimeWeightedStats, PiecewiseConstantMean) {
  TimeWeightedStats s;
  s.update(0.0, 1.0);  // 1 for [0,2)
  s.update(2.0, 3.0);  // 3 for [2,3)
  s.finish(3.0);
  EXPECT_NEAR(s.mean(), (1.0 * 2 + 3.0 * 1) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.time_observed(), 3.0);
}

TEST(TimeWeightedStats, ZeroSpanReturnsCurrent) {
  TimeWeightedStats s;
  s.update(1.0, 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

// ---------- Histogram ----------

TEST(Histogram, QuantilesOfUniformFill) {
  Histogram h(0.0, 10.0, 100);
  for (int i = 0; i < 10000; ++i) h.add(i % 100 * 0.1 + 0.05);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 0.2);
  EXPECT_EQ(h.total(), 10000u);
}

TEST(Histogram, OutOfRangeGoesToEdgeBins) {
  Histogram h(0.0, 1.0, 10);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, TailFraction) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.tail_fraction(8.0), 0.2, 1e-12);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------- QuantileSketch ----------

TEST(QuantileSketch, QuantilesOfUniformFillWithinOneSubBucket) {
  QuantileSketch s(1.0, 2048.0, 32);
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  // Relative error is bounded by one sub-bucket width (~1/32).
  EXPECT_NEAR(s.p50(), 500.0, 500.0 / 32 + 1.0);
  EXPECT_NEAR(s.p99(), 990.0, 990.0 / 32 + 1.0);
  EXPECT_NEAR(s.p999(), 999.0, 999.0 / 32 + 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(QuantileSketch, OrderInsensitive) {
  QuantileSketch asc(1e-3, 64.0, 16), desc(1e-3, 64.0, 16);
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(1.0));
  for (double x : xs) asc.add(x);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) desc.add(*it);
  EXPECT_EQ(asc.fingerprint(), desc.fingerprint());
  EXPECT_DOUBLE_EQ(asc.p99(), desc.p99());
  EXPECT_DOUBLE_EQ(asc.p999(), desc.p999());
}

TEST(QuantileSketch, MergeMatchesSingleStream) {
  QuantileSketch whole(1.0, 1024.0, 32);
  QuantileSketch a(1.0, 1024.0, 32), b(1.0, 1024.0, 32);
  Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(0.5, 900.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.fingerprint(), whole.fingerprint());
  EXPECT_DOUBLE_EQ(a.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(QuantileSketch, OutOfRangeSaturatesEdgeBuckets) {
  QuantileSketch s(1.0, 100.0, 8);
  s.add(0.25);   // below min_value -> underflow bucket
  s.add(1e9);    // above max_value -> overflow bucket
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), 0.25);
  EXPECT_DOUBLE_EQ(s.max(), 1e9);
  // Quantiles clamp to the exact observed extremes, so no mass escapes.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1e9);
}

TEST(QuantileSketch, EmptySketchReportsZero) {
  const QuantileSketch s(1.0, 100.0, 8);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(QuantileSketch, ValidatesLayout) {
  EXPECT_THROW(QuantileSketch(0.0, 10.0), holms::InvalidArgument);
  EXPECT_THROW(QuantileSketch(1.0, 1.5), holms::InvalidArgument);
  EXPECT_THROW(QuantileSketch(1.0, 10.0, 0), holms::InvalidArgument);
  QuantileSketch a(1.0, 100.0, 8);
  QuantileSketch b(1.0, 100.0, 16);
  EXPECT_THROW(a.merge(b), holms::InvalidArgument);
}

// ---------- batch means & autocorrelation ----------

TEST(BatchMeans, ShrinksWithSampleSize) {
  Rng rng(3);
  std::vector<double> small, large;
  for (int i = 0; i < 400; ++i) small.push_back(rng.normal(0, 1));
  for (int i = 0; i < 40000; ++i) large.push_back(rng.normal(0, 1));
  const double hw_small = holms::sim::batch_means_half_width(small);
  const double hw_large = holms::sim::batch_means_half_width(large);
  EXPECT_GT(hw_small, hw_large);
  EXPECT_GT(hw_large, 0.0);
}

TEST(Autocorrelation, IidIsNearZeroAtLag) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(0, 1));
  EXPECT_NEAR(holms::sim::autocorrelation(xs, 5), 0.0, 0.03);
  EXPECT_NEAR(holms::sim::autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Autocorrelation, Ar1HasGeometricDecay) {
  Rng rng(19);
  std::vector<double> xs{0.0};
  const double phi = 0.8;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(phi * xs.back() + rng.normal(0, 1));
  }
  const double r1 = holms::sim::autocorrelation(xs, 1);
  const double r2 = holms::sim::autocorrelation(xs, 2);
  EXPECT_NEAR(r1, phi, 0.03);
  EXPECT_NEAR(r2, phi * phi, 0.04);
}

}  // namespace
