// Property-based tests: parameterized sweeps over model invariants.
#include <gtest/gtest.h>

#include <deque>

#include "asip/kernels.hpp"
#include "dvfs/dvfs.hpp"
#include "markov/chain.hpp"
#include "markov/jackson.hpp"
#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/scheduling.hpp"
#include "noc/taskgraph.hpp"
#include "sim/random.hpp"
#include "stream/channel.hpp"
#include "stream/kpn.hpp"
#include "stream/stream_system.hpp"
#include "traffic/sources.hpp"
#include "wireless/transceiver.hpp"

namespace {

using holms::sim::Rng;

// ---------- M/M/1/K monotonicity properties ----------

class Mm1kBufferSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Mm1kBufferSweep, BlockingDecreasesWithBuffer) {
  const std::size_t k = GetParam();
  const auto small = holms::markov::mm1k(1.5, 2.0, k);
  const auto bigger = holms::markov::mm1k(1.5, 2.0, k + 1);
  EXPECT_GT(small.blocking_probability, bigger.blocking_probability);
  EXPECT_LE(small.throughput, bigger.throughput + 1e-12);
}

TEST_P(Mm1kBufferSweep, DistributionIsNormalized) {
  const auto pi = holms::markov::mm1k_distribution(1.5, 2.0, GetParam());
  double sum = 0.0;
  for (double x : pi) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Buffers, Mm1kBufferSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, QueueLengthIncreasesWithLoad) {
  const double rho = GetParam();
  const auto lighter = holms::markov::mm1(rho * 2.0 * 0.95, 2.0);
  const auto heavier = holms::markov::mm1(rho * 2.0, 2.0);
  EXPECT_LT(lighter.mean_queue_length, heavier.mean_queue_length);
  EXPECT_LT(heavier.utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.95));

// ---------- random stochastic matrices: solver agreement ----------

class RandomChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChain, AllSolversAgree) {
  Rng rng(GetParam());
  const std::size_t n = 3 + GetParam() % 6;
  holms::markov::Dtmc d(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> row(n);
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      row[c] = rng.uniform(0.01, 1.0);  // strictly positive => ergodic
      sum += row[c];
    }
    for (std::size_t c = 0; c < n; ++c) d.set(r, c, row[c] / sum);
  }
  ASSERT_TRUE(d.is_stochastic(1e-9));
  holms::markov::SolveOptions power, gs, lu;
  power.method = holms::markov::SteadyStateMethod::kPowerIteration;
  gs.method = holms::markov::SteadyStateMethod::kGaussSeidel;
  lu.method = holms::markov::SteadyStateMethod::kDirectLU;
  const auto p1 = d.steady_state(power).distribution;
  const auto p2 = d.steady_state(gs).distribution;
  const auto p3 = d.steady_state(lu).distribution;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(p1[i], p3[i], 1e-6);
    EXPECT_NEAR(p2[i], p3[i], 1e-6);
  }
  // Stationarity: pi P == pi.
  const auto stepped = d.transient(p3, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(stepped[i], p3[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChain,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- FIFO model check against std::deque ----------

TEST(BufferModelCheck, RandomOpsMatchReference) {
  Rng rng(42);
  holms::stream::Buffer buf("b", 5, 1, 1);
  std::deque<holms::stream::Token> ref;
  double now = 0.0;
  for (int op = 0; op < 5000; ++op) {
    now += 0.001;
    if (rng.bernoulli(0.5)) {
      if (ref.size() < 5) {
        holms::stream::Token t;
        t.id = static_cast<std::uint64_t>(op);
        buf.push(now, t);
        ref.push_back(t);
      } else {
        EXPECT_TRUE(buf.full());
      }
    } else if (!ref.empty()) {
      const auto got = buf.pop(now);
      EXPECT_EQ(got.id, ref.front().id);
      ref.pop_front();
    } else {
      EXPECT_TRUE(buf.empty());
    }
    EXPECT_EQ(buf.size(), ref.size());
  }
}

// ---------- mapping properties over random graphs ----------

class RandomMappingCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMappingCase, SaNeverWorseThanRandomBaseline) {
  Rng rng(GetParam());
  const auto g = holms::noc::random_graph(10 + GetParam() % 5, rng, 1e6);
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions sa;
  sa.iterations = 2000;
  Rng sa_rng = rng.fork();
  const auto best = holms::noc::sa_mapping(g, mesh, em, sa_rng, sa);
  const double e_best =
      holms::noc::evaluate_mapping(g, mesh, em, best).comm_energy_j;
  for (int i = 0; i < 5; ++i) {
    const auto m = holms::noc::random_mapping(g.num_nodes(), mesh, rng);
    const double e = holms::noc::evaluate_mapping(g, mesh, em, m).comm_energy_j;
    EXPECT_LE(e_best, e + 1e-15);
  }
}

TEST_P(RandomMappingCase, GreedyMappingIsInjective) {
  Rng rng(GetParam() + 100);
  const auto g = holms::noc::random_graph(12, rng, 1e6);
  holms::noc::Mesh2D mesh(4, 4);
  const auto m = holms::noc::greedy_mapping(g, mesh, holms::noc::EnergyModel{});
  std::vector<bool> used(mesh.num_tiles(), false);
  for (auto t : m) {
    EXPECT_FALSE(used[t]);
    used[t] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMappingCase,
                         ::testing::Values(11, 22, 33, 44));

// ---------- schedule validity over random DAGs ----------

class RandomSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchedule, BothSchedulersProduceValidSchedules) {
  Rng rng(GetParam());
  const auto g = holms::noc::random_graph(10, rng, 2e5);
  holms::noc::SchedProblem p;
  p.mesh = holms::noc::Mesh2D(4, 3);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    p.tasks.push_back({g.node(i).name, g.node(i).compute_cycles});
  }
  for (const auto& e : g.edges()) {
    p.deps.push_back({e.src, e.dst, e.volume_bits});
  }
  p.tile_of = holms::noc::random_mapping(g.num_nodes(), p.mesh, rng);
  p.deadline_s = 0.2;
  const auto edf = holms::noc::schedule_edf(p);
  EXPECT_TRUE(holms::noc::schedule_is_valid(p, edf));
  for (auto policy : {holms::noc::SlackPolicy::kProportional,
                      holms::noc::SlackPolicy::kGreedyLongest}) {
    const auto eas = holms::noc::schedule_energy_aware(p, policy);
    EXPECT_TRUE(holms::noc::schedule_is_valid(p, eas));
    if (edf.deadline_met) {
      EXPECT_TRUE(eas.deadline_met);
      EXPECT_LE(eas.total_energy_j, edf.total_energy_j + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchedule,
                         ::testing::Values(3, 5, 7, 9, 13));

// ---------- router flit conservation ----------

class RouterConfigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RouterConfigSweep, FlitsConservedAcrossBufferDepths) {
  holms::noc::Mesh2D mesh(3, 3);
  holms::noc::NocSim::Config cfg;
  cfg.buffer_depth = GetParam();
  holms::noc::NocSim sim(mesh, cfg, Rng(77));
  holms::noc::Flow f;
  f.src = 0;
  f.dst = 8;
  f.packet_flits = 6;
  f.packets_per_cycle = 0.02;
  sim.add_flow(f);
  holms::noc::Flow g;
  g.src = 2;
  g.dst = 6;
  g.packet_flits = 6;
  g.packets_per_cycle = 0.02;
  sim.add_flow(g);
  sim.run(30000);
  const auto s = sim.stats();
  // Delivered never exceeds injected; under light load nearly all arrive.
  EXPECT_LE(s.packets_delivered, s.packets_injected);
  EXPECT_GE(s.packets_delivered + 30, s.packets_injected);
}

INSTANTIATE_TEST_SUITE_P(Depths, RouterConfigSweep,
                         ::testing::Values(1, 2, 4, 8));

// ---------- CTMC balance equations on random chains ----------

class RandomCtmc : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCtmc, SteadyStateSatisfiesGlobalBalance) {
  Rng rng(GetParam());
  const std::size_t n = 4 + GetParam() % 4;
  holms::markov::Ctmc c(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) c.set_rate(i, j, rng.uniform(0.1, 3.0));
    }
  }
  holms::markov::SolveOptions lu;
  lu.method = holms::markov::SteadyStateMethod::kDirectLU;
  const auto pi = c.steady_state(lu).distribution;
  // Global balance: inflow == outflow per state.
  for (std::size_t s = 0; s < n; ++s) {
    double inflow = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != s) inflow += pi[j] * c.rate(j, s);
    }
    EXPECT_NEAR(inflow, pi[s] * c.exit_rate(s), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCtmc,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

// ---------- Jackson = per-station M/M/1 under any stable tandem ----------

class TandemSweep : public ::testing::TestWithParam<double> {};

TEST_P(TandemSweep, SojournEqualsSumOfStationWaits) {
  const double lambda = GetParam();
  const auto net =
      holms::markov::tandem_network({8.0, 6.0, 10.0, 7.0}, lambda);
  const auto sol = net.solve();
  ASSERT_TRUE(sol.stable);
  double w = 0.0;
  for (const auto& s : sol.station) w += s.mean_waiting_time;
  EXPECT_NEAR(sol.mean_sojourn_time, w, 1e-9);
  // Throughput conservation.
  EXPECT_NEAR(sol.throughput, lambda, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Loads, TandemSweep,
                         ::testing::Values(1.0, 2.5, 4.0, 5.5));

// ---------- cross-config bit-exactness of the ASIP applications ----------

class VoiceSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoiceSeedSweep, AcceleratedDecisionBitExactAcrossSeeds) {
  holms::asip::VoiceRecognitionApp app;
  std::int32_t base = -1, accel = -2;
  holms::asip::CoreConfig tuned;
  tuned.include_mac_block = true;
  tuned.dcache_lines = 256;
  evaluate_app(app, holms::asip::CoreConfig{}, {}, GetParam(), &base);
  evaluate_app(app, tuned,
               {holms::asip::kExtMacLoad, holms::asip::kExtSqdLoad,
                holms::asip::kExtAbsDiff, holms::asip::kExtDtwCell},
               GetParam(), &accel);
  EXPECT_EQ(base, accel);
  EXPECT_GE(base, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoiceSeedSweep,
                         ::testing::Values(1, 17, 99, 1234));

// ---------- stream loss tracks channel error rate ----------

class PerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PerSweep, UncodedLossApproximatesPer) {
  const double per = GetParam();
  holms::traffic::CbrSource src(100.0);
  holms::stream::IidErrorModel err(per, Rng(55));
  holms::stream::StreamConfig cfg;
  cfg.link.bits_per_second = 10e6;
  const auto q = run_stream(src, err, cfg, 40.0);
  EXPECT_NEAR(q.loss_rate, per, 0.1 * per + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Pers, PerSweep,
                         ::testing::Values(0.02, 0.08, 0.2, 0.4));

// ---------- DVFS level selection is minimal and feasible ----------

class DeadlineSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeadlineSweep, MinLevelIsTightestFeasible) {
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  const double cycles = 3e8;
  const double deadline = GetParam();
  const std::size_t lvl = cpu.min_level_for(cycles, deadline);
  if (lvl < cpu.num_points()) {
    EXPECT_LE(cycles / cpu.point(lvl).frequency_hz, deadline);
    if (lvl > 0) {
      EXPECT_GT(cycles / cpu.point(lvl - 1).frequency_hz, deadline);
    }
  } else {
    EXPECT_GT(cycles / cpu.point(cpu.num_points() - 1).frequency_hz,
              deadline);
  }
}

INSTANTIATE_TEST_SUITE_P(Deadlines, DeadlineSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 1.5, 3.0));

// ---------- adaptation dominance over random channel states ----------

class AdaptGainSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaptGainSweep, GameTheoreticBetweenOracleAndStatic) {
  holms::wireless::EnergyManager mgr(
      holms::wireless::RadioModel{},
      holms::wireless::EnergyManager::Options{});
  Rng rng(GetParam());
  const double worst = 1e-10;
  const auto fixed = mgr.static_config(worst);
  ASSERT_TRUE(fixed.feasible);
  for (int i = 0; i < 5; ++i) {
    const double gain = worst * std::pow(10.0, rng.uniform(0.0, 2.0));
    const auto oracle = mgr.optimal(gain);
    const auto adapted = mgr.game_theoretic(gain, fixed);
    const auto still = mgr.evaluate(fixed.modulation, fixed.tx_power_w,
                                    fixed.code, gain);
    ASSERT_TRUE(adapted.feasible);
    EXPECT_GE(adapted.energy_per_bit_j, oracle.energy_per_bit_j - 1e-18);
    if (still.feasible) {
      EXPECT_LE(adapted.energy_per_bit_j, still.energy_per_bit_j + 1e-18);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptGainSweep,
                         ::testing::Values(61, 62, 63));

// ---------- transceiver feasibility frontier ----------

class GainSweep : public ::testing::TestWithParam<double> {};

TEST_P(GainSweep, OptimalEnergyDecreasesWithChannelGain) {
  holms::wireless::EnergyManager mgr(holms::wireless::RadioModel{},
                                     holms::wireless::EnergyManager::Options{});
  const double gain = GetParam();
  const auto here = mgr.optimal(gain);
  const auto better = mgr.optimal(gain * 2.0);
  if (here.feasible && better.feasible) {
    EXPECT_LE(better.energy_per_bit_j, here.energy_per_bit_j + 1e-18);
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, GainSweep,
                         ::testing::Values(1e-10, 3e-10, 1e-9, 3e-9, 1e-8));

}  // namespace
