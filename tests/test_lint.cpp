// Golden-fixture tests for holms_lint (tools/holms_lint, DESIGN.md §5f).
//
// Each rule gets one positive fixture (the violation fires) and one negative
// fixture (near-miss code stays clean), pinning the scanner's heuristics so
// rule edits can't silently widen or narrow them.  Fixtures live in
// tests/lint_fixtures/ — the CLI skips that directory when linting the repo,
// and these tests lex them with an explicit FileKind (their on-disk path
// would classify them as test code and exempt the library-only rules).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"

namespace lint = holms::lint;

namespace {

std::string fixture_text(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

lint::SourceFile lex_fixture(const std::string& name, lint::FileKind kind) {
  return lint::lex(name, fixture_text(name), kind);
}

std::vector<lint::Finding> lint_fixture(const std::string& name,
                                        lint::FileKind kind) {
  const lint::SourceFile f = lex_fixture(name, kind);
  return lint::run_rules(f);
}

std::size_t active_count(const std::vector<lint::Finding>& fs,
                         const std::string& rule) {
  std::size_t n = 0;
  for (const lint::Finding& f : fs) {
    if (!f.suppressed && f.rule == rule) ++n;
  }
  return n;
}

std::size_t active_total(const std::vector<lint::Finding>& fs) {
  std::size_t n = 0;
  for (const lint::Finding& f : fs) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::size_t suppressed_count(const std::vector<lint::Finding>& fs,
                             const std::string& rule) {
  std::size_t n = 0;
  for (const lint::Finding& f : fs) {
    if (f.suppressed && f.rule == rule) ++n;
  }
  return n;
}

}  // namespace

// ---- D001: banned randomness primitives -----------------------------------

TEST(LintD001, FlagsStdEnginesDistributionsAndRand) {
  const auto fs =
      lint_fixture("d001_bad.cpp", lint::FileKind::kLibrarySource);
  // mt19937, uniform_real_distribution, rand().
  EXPECT_EQ(active_count(fs, "D001"), 3u);
}

TEST(LintD001, IgnoresSimRngAndLookalikeIdentifiers) {
  const auto fs = lint_fixture("d001_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- D002: wall-clock reads -----------------------------------------------

TEST(LintD002, FlagsClockNowAndTimeCalls) {
  const auto fs =
      lint_fixture("d002_bad.cpp", lint::FileKind::kLibrarySource);
  // steady_clock::now() and time(nullptr).
  EXPECT_EQ(active_count(fs, "D002"), 2u);
}

TEST(LintD002, IgnoresSimulatedTimeAndMemberFunctions) {
  const auto fs = lint_fixture("d002_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- D003: range-for over unordered containers ----------------------------

TEST(LintD003, FlagsRangeForOverUnorderedMap) {
  const auto fs =
      lint_fixture("d003_bad.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(fs, "D003"), 1u);
}

TEST(LintD003, AllowsOrderedIterationAndMembershipTests) {
  const auto fs = lint_fixture("d003_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

TEST(LintD003, SeesThroughTypedefsAndUsingAliases) {
  const auto fs =
      lint_fixture("d003_alias_bad.cpp", lint::FileKind::kLibrarySource);
  // using-alias, typedef, and alias-of-alias range-fors all flagged.
  EXPECT_EQ(active_count(fs, "D003"), 3u);
}

TEST(LintD003, IgnoresAliasesOfOrderedContainers) {
  const auto fs =
      lint_fixture("d003_alias_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- D004: mutable statics at namespace scope -----------------------------

TEST(LintD004, FlagsMutableNamespaceScopeStatics) {
  const auto fs =
      lint_fixture("d004_bad.cpp", lint::FileKind::kLibrarySource);
  // `static int call_count;` at file scope and `static double last_result`
  // inside namespace holms.
  EXPECT_EQ(active_count(fs, "D004"), 2u);
}

TEST(LintD004, AllowsConstantsStaticFunctionsAndLocals) {
  const auto fs = lint_fixture("d004_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- D005: blocking primitives outside exec/ ------------------------------

TEST(LintD005, FlagsSleepsAndLockPrimitivesInLibraryCode) {
  const auto fs =
      lint_fixture("d005_bad.cpp", lint::FileKind::kLibrarySource);
  // sleep_for, usleep, mutex, condition_variable, unique_lock.
  EXPECT_EQ(active_count(fs, "D005"), 5u);
}

TEST(LintD005, IgnoresLookalikesMemberCallsAndOwnTypes) {
  const auto fs = lint_fixture("d005_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

TEST(LintD005, ExecModuleMayBlock) {
  // The worker pool is the one module allowed to block: the same tokens
  // under an exec/ path produce no findings.
  const lint::SourceFile f =
      lint::lex("src/exec/pool_detail.cpp", fixture_text("d005_bad.cpp"),
                lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(lint::run_rules(f), "D005"), 0u);
}

// ---- D006: scalar floating-point reduction loops ---------------------------

TEST(LintD006, FlagsFpCompoundAccumulationInLoops) {
  const auto fs =
      lint_fixture("d006_bad.cpp", lint::FileKind::kLibrarySource);
  // acc += (for), prod *= (single-statement for), level += (while),
  // energy_j += (member declared double in-file).
  EXPECT_EQ(active_count(fs, "D006"), 4u);
}

TEST(LintD006, IgnoresIntegerSubscriptedAndAnnotatedSites) {
  const auto fs = lint_fixture("d006_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
  // The annotated reduction is found but suppressed with a reason.
  EXPECT_EQ(suppressed_count(fs, "D006"), 1u);
}

TEST(LintD006, SimdModuleIsTheBlessedReductionHome) {
  const lint::SourceFile f =
      lint::lex("src/exec/simd_scalar.cpp", fixture_text("d006_bad.cpp"),
                lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(lint::run_rules(f), "D006"), 0u);
}

// ---- C001: Params/Options structs must expose validate() ------------------

TEST(LintC001, FlagsParamsStructsWithoutValidate) {
  const auto fs =
      lint_fixture("c001_bad.hpp", lint::FileKind::kLibraryHeader);
  // SolverOptions at namespace scope and Widget::Params nested.
  EXPECT_EQ(active_count(fs, "C001"), 2u);
}

TEST(LintC001, AcceptsValidateMembersAndSkipsNonParamsStructs) {
  const auto fs = lint_fixture("c001_ok.hpp", lint::FileKind::kLibraryHeader);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- C002: typed exception hierarchy only ---------------------------------

TEST(LintC002, FlagsThrowOfBareStdExceptions) {
  const auto fs =
      lint_fixture("c002_bad.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(fs, "C002"), 1u);
}

TEST(LintC002, AcceptsTypedHolmsHierarchy) {
  const auto fs = lint_fixture("c002_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- C003: no `using namespace` in headers --------------------------------

TEST(LintC003, FlagsUsingNamespaceInAnyHeader) {
  // Fires in library headers...
  const auto lib =
      lint_fixture("c003_bad.hpp", lint::FileKind::kLibraryHeader);
  EXPECT_EQ(active_count(lib, "C003"), 1u);
  // ...and in test/bench headers too: headers leak regardless of owner.
  const auto other =
      lint_fixture("c003_bad.hpp", lint::FileKind::kOtherHeader);
  EXPECT_EQ(active_count(other, "C003"), 1u);
}

TEST(LintC003, AcceptsScopedAliases) {
  const auto fs = lint_fixture("c003_ok.hpp", lint::FileKind::kLibraryHeader);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- C004: headers need #pragma once --------------------------------------

TEST(LintC004, FlagsHeaderWithoutPragmaOnce) {
  const auto fs =
      lint_fixture("c004_bad.hpp", lint::FileKind::kLibraryHeader);
  EXPECT_EQ(active_count(fs, "C004"), 1u);
  // The finding anchors to line 1: there is no offending line to point at.
  for (const lint::Finding& f : fs) {
    if (f.rule == "C004") {
      EXPECT_EQ(f.line, 1u);
    }
  }
}

TEST(LintC004, AcceptsPragmaOnce) {
  const auto fs = lint_fixture("c004_ok.hpp", lint::FileKind::kLibraryHeader);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- H001: no direct console output in library code -----------------------

TEST(LintH001, FlagsCoutAndPrintf) {
  const auto fs =
      lint_fixture("h001_bad.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(fs, "H001"), 2u);
}

TEST(LintH001, AllowsBufferFormatting) {
  const auto fs = lint_fixture("h001_ok.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
}

// ---- rule scoping ----------------------------------------------------------

TEST(LintScoping, TestAndBenchCodeIsExemptFromLibraryRules) {
  // The same violations that fire in library code are fine in tests/bench:
  // they legitimately use ad-hoc randomness, clocks and stdout.
  for (const char* name :
       {"d001_bad.cpp", "d002_bad.cpp", "d003_bad.cpp", "d004_bad.cpp",
        "d005_bad.cpp", "d006_bad.cpp", "c002_bad.cpp", "h001_bad.cpp"}) {
    const auto fs = lint_fixture(name, lint::FileKind::kOtherSource);
    EXPECT_EQ(active_total(fs), 0u) << name;
  }
  // Header-wide rules still apply to non-library headers...
  const auto hdr = lint_fixture("c004_bad.hpp", lint::FileKind::kOtherHeader);
  EXPECT_EQ(active_count(hdr, "C004"), 1u);
  // ...but C001 (validate members) is a library-API contract only.
  const auto c001 =
      lint_fixture("c001_bad.hpp", lint::FileKind::kOtherHeader);
  EXPECT_EQ(active_count(c001, "C001"), 0u);
}

TEST(LintScoping, ClassifyPathMatchesRepoLayout) {
  EXPECT_EQ(lint::classify_path("src/noc/mapping.cpp"),
            lint::FileKind::kLibrarySource);
  EXPECT_EQ(lint::classify_path("src/noc/mapping.hpp"),
            lint::FileKind::kLibraryHeader);
  EXPECT_EQ(lint::classify_path("tests/test_core.cpp"),
            lint::FileKind::kOtherSource);
  EXPECT_EQ(lint::classify_path("bench/bench_util.hpp"),
            lint::FileKind::kOtherHeader);
}

// ---- suppressions ----------------------------------------------------------

TEST(LintSuppression, LineAndTrailingAllowSilenceTheFinding) {
  const auto fs =
      lint_fixture("suppress_ok.cpp", lint::FileKind::kLibrarySource);
  // Both clock reads are found but suppressed, with their reasons attached.
  EXPECT_EQ(active_total(fs), 0u);
  EXPECT_EQ(suppressed_count(fs, "D002"), 2u);
  for (const lint::Finding& f : fs) {
    EXPECT_TRUE(f.suppressed);
    EXPECT_FALSE(f.suppress_reason.empty());
  }
}

TEST(LintSuppression, MalformedAllowIsX001AndDoesNotSuppress) {
  const auto fs =
      lint_fixture("suppress_bad.cpp", lint::FileKind::kLibrarySource);
  // Missing reason and unknown rule id: two X001s, and both underlying
  // D002 findings stay live.
  EXPECT_EQ(active_count(fs, "X001"), 2u);
  EXPECT_EQ(active_count(fs, "D002"), 2u);
  EXPECT_EQ(suppressed_count(fs, "D002"), 0u);
}

TEST(LintSuppression, FileLevelAllowCoversTheWholeFile) {
  const auto fs =
      lint_fixture("suppress_file.cpp", lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_total(fs), 0u);
  EXPECT_EQ(suppressed_count(fs, "D002"), 2u);
}

// ---- baseline --------------------------------------------------------------

namespace {

struct Linted {
  lint::SourceFile file;
  std::vector<lint::Finding> findings;
  std::map<std::string, const lint::SourceFile*> by_path;

  Linted(const std::string& name, const std::string& content,
         lint::FileKind kind)
      : file(lint::lex(name, content, kind)) {
    findings = lint::run_rules(file);
    by_path[file.path] = &file;
  }
};

}  // namespace

TEST(LintBaseline, GrandfathersExistingFindings) {
  Linted v("d002_bad.cpp", fixture_text("d002_bad.cpp"),
           lint::FileKind::kLibrarySource);
  ASSERT_EQ(active_total(v.findings), 2u);

  const lint::Baseline base = lint::make_baseline(v.findings, v.by_path);
  EXPECT_EQ(
      lint::subtract_baseline(v.findings, v.by_path, base).size(), 0u);
  // With no baseline, everything is new.
  EXPECT_EQ(
      lint::subtract_baseline(v.findings, v.by_path, lint::Baseline{}).size(),
      2u);
}

TEST(LintBaseline, KeysSurviveLineNumberDrift) {
  const std::string original = fixture_text("d002_bad.cpp");
  Linted v("d002_bad.cpp", original, lint::FileKind::kLibrarySource);
  const lint::Baseline base = lint::make_baseline(v.findings, v.by_path);

  // Shift every line down: unrelated edits above a finding must not turn it
  // into a regression.  Keys hash the normalized source line, not its number.
  Linted shifted("d002_bad.cpp", "// new leading comment\n\n\n" + original,
                 lint::FileKind::kLibrarySource);
  ASSERT_EQ(active_total(shifted.findings), 2u);
  EXPECT_NE(shifted.findings[0].line, v.findings[0].line);
  EXPECT_EQ(
      lint::subtract_baseline(shifted.findings, shifted.by_path, base).size(),
      0u);
}

TEST(LintBaseline, NewCopiesOfABaselinedLineAreRegressions) {
  const std::string original = fixture_text("d002_bad.cpp");
  Linted v("d002_bad.cpp", original, lint::FileKind::kLibrarySource);
  const lint::Baseline base = lint::make_baseline(v.findings, v.by_path);

  // Paste an extra copy of a grandfathered violation: the per-key count
  // budget is exhausted and exactly the surplus copy surfaces as new.
  Linted grown("d002_bad.cpp",
               original +
                   "long stamp2() {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return t.time_since_epoch().count();\n"
                   "}\n",
               lint::FileKind::kLibrarySource);
  ASSERT_EQ(active_total(grown.findings), 3u);
  EXPECT_EQ(
      lint::subtract_baseline(grown.findings, grown.by_path, base).size(), 1u);
}

TEST(LintBaseline, JsonRoundTrips) {
  Linted v("d002_bad.cpp", fixture_text("d002_bad.cpp"),
           lint::FileKind::kLibrarySource);
  const lint::Baseline base = lint::make_baseline(v.findings, v.by_path);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(lint::parse_baseline_json(lint::baseline_to_json(base)), base);

  // The checked-in empty baseline parses too.
  const lint::Baseline empty =
      lint::parse_baseline_json("{\"version\": 1, \"entries\": {}}");
  EXPECT_TRUE(empty.empty());

  EXPECT_THROW(lint::parse_baseline_json("not json"), std::runtime_error);
}

TEST(LintBaseline, SuppressedFindingsNeverReachTheBaselineDiff) {
  Linted v("suppress_ok.cpp", fixture_text("suppress_ok.cpp"),
           lint::FileKind::kLibrarySource);
  ASSERT_EQ(v.findings.size(), 2u);
  // Even an empty baseline reports nothing new: suppression already
  // accounted for these.
  EXPECT_EQ(
      lint::subtract_baseline(v.findings, v.by_path, lint::Baseline{}).size(),
      0u);
  // And suppressed findings are not written into fresh baselines.
  EXPECT_TRUE(lint::make_baseline(v.findings, v.by_path).empty());
}

// ---- the fault layer itself ------------------------------------------------

// PR gate: the failure-domain / burst / crew sources ship rule-clean with
// zero suppressions — no lint-allow escape hatches in holms::fault.
TEST(LintRepo, FaultLayerIsCleanWithZeroSuppressions) {
  const char* files[] = {"fault/schedule.hpp", "fault/schedule.cpp",
                         "fault/domain.hpp",   "fault/domain.cpp",
                         "fault/injector.hpp"};
  for (const char* rel : files) {
    const std::string path = std::string(HOLMS_SRC_DIR) + "/" + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing source " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto findings =
        lint::run_rules(lint::lex(rel, buf.str(), lint::classify_path(path)));
    for (const lint::Finding& f : findings) {
      ADD_FAILURE() << rel << ":" << f.line << " " << f.rule << " "
                    << f.message << (f.suppressed ? " (suppressed)" : "");
    }
  }
}

TEST(LintRepo, IslandFilesAreCleanWithZeroSuppressions) {
  const char* files[] = {"core/islands.hpp", "core/islands.cpp"};
  for (const char* rel : files) {
    const std::string path = std::string(HOLMS_SRC_DIR) + "/" + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing source " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto findings =
        lint::run_rules(lint::lex(rel, buf.str(), lint::classify_path(path)));
    for (const lint::Finding& f : findings) {
      ADD_FAILURE() << rel << ":" << f.line << " " << f.rule << " "
                    << f.message << (f.suppressed ? " (suppressed)" : "");
    }
  }
}

// ---- lexer regressions: raw strings, prefixes, CRLF continuations ----------

TEST(LintLexer, RawStringPrefixesAreOpaqueToRules) {
  const auto fs =
      lint_fixture("lexer_raw.cpp", lint::FileKind::kLibrarySource);
  // Every banned token inside the R"..."/u8R"..."/LR"..."/uR"..."/UR"..."
  // bodies and the prefixed ordinary literals is data; only the real
  // std::rand() at the bottom fires.
  EXPECT_EQ(active_count(fs, "D001"), 1u);
  EXPECT_EQ(active_count(fs, "D002"), 0u);
  EXPECT_EQ(active_count(fs, "H001"), 0u);
  EXPECT_EQ(active_total(fs), 1u);
}

TEST(LintLexer, MacroContinuationWithCrlfStaysPreprocessor) {
  // The backslash sits before a CRLF line ending: the continuation line is
  // still part of the directive, so the std::rand() in the macro body never
  // reaches the rules as code.
  const std::string src =
      "#define DRAW(x) \\\r\n"
      "  std::rand() + (x)\r\n"
      "int f(int x) { return x; }\n";
  const lint::SourceFile f =
      lint::lex("src/stream/macro.cpp", src, lint::FileKind::kLibrarySource);
  EXPECT_EQ(active_count(lint::run_rules(f), "D001"), 0u);
  // And lexing resumes correctly after the directive.
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens.front().text, "int");
  EXPECT_EQ(f.tokens.front().line, 3u);
}

TEST(LintLexer, RecordsQuotedIncludesWithLines) {
  const std::string src =
      "#pragma once\n"
      "#include \"markov/api.hpp\"\n"
      "#include <vector>\n"
      "#include \"stream/pipe.hpp\"  // trailing comment\n";
  const lint::SourceFile f =
      lint::lex("src/serve/inc.hpp", src, lint::FileKind::kLibraryHeader);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].target, "markov/api.hpp");
  EXPECT_EQ(f.includes[0].line, 2u);
  EXPECT_EQ(f.includes[1].target, "stream/pipe.hpp");
  EXPECT_EQ(f.includes[1].line, 4u);
}

// ---- the whole-program graph pack (graph.hpp) ------------------------------

namespace {

/// Lexes fixtures under fake src/ paths (their on-disk home would classify
/// them as test code), runs the per-file rules, builds the index, and runs
/// the graph pack — the same sequencing the CLI uses.
struct GraphHarness {
  std::vector<lint::SourceFile> files;
  std::vector<lint::Finding> per_file;
  lint::ProgramGraph graph;

  void add(const std::string& fake_path, const std::string& fixture) {
    files.push_back(lint::lex(fake_path, fixture_text(fixture),
                              lint::classify_path(fake_path)));
  }
  std::vector<lint::Finding> run(const lint::LayerConfig& layers) {
    per_file.clear();
    for (const lint::SourceFile& f : files) {
      const auto fs = lint::run_rules(f);
      per_file.insert(per_file.end(), fs.begin(), fs.end());
    }
    graph = lint::build_graph(files);
    return lint::run_graph_rules(files, graph, layers, per_file);
  }
};

lint::LayerConfig test_layers() {
  return lint::parse_layers_json(R"({
    "layers": [["exec"], ["sim"], ["markov", "traffic", "dvfs", "fault"],
               ["stream"], ["asip"], ["noc"], ["wireless"], ["streaming"],
               ["manet"], ["serve"], ["core"]],
    "internal_markers": ["_detail"],
    "rule_homes": {"D001": ["sim/random.hpp"]},
    "escape_boundaries": []
  })");
}

}  // namespace

TEST(LintLayers, CheckedInLayersFileParsesAndRanksBottomUp) {
  lint::LayerConfig cfg;
  ASSERT_TRUE(lint::load_layers_file(HOLMS_LAYERS_FILE, cfg));
  EXPECT_TRUE(cfg.loaded);
  // Spot-check the DESIGN.md §5 dependency order, bottom-up.
  EXPECT_EQ(cfg.rank.at("exec"), 0);
  EXPECT_EQ(cfg.rank.at("sim"), 1);
  EXPECT_LT(cfg.rank.at("markov"), cfg.rank.at("stream"));
  EXPECT_LT(cfg.rank.at("serve"), cfg.rank.at("core"));
  EXPECT_EQ(cfg.rank.count("fault"), 1u);
  EXPECT_EQ(cfg.rank.at("fault"), cfg.rank.at("markov"));
}

TEST(LintLayers, MalformedConfigsThrow) {
  EXPECT_THROW(lint::parse_layers_json("{}"), std::runtime_error);
  EXPECT_THROW(lint::parse_layers_json("not json"), std::runtime_error);
  EXPECT_THROW(lint::parse_layers_json(R"({"layers": [["a"], ["a"]]})"),
               std::runtime_error);
}

TEST(LintA001, UpwardIncludeAcrossTheDagFires) {
  GraphHarness h;
  h.add("src/serve/api.hpp", "a001_serve_api.hpp");
  h.add("src/markov/uses_serve.cpp", "a001_markov_uses_serve.cpp");
  const auto fs = h.run(test_layers());
  ASSERT_EQ(active_count(fs, "A001"), 1u);
  for (const lint::Finding& f : fs) {
    if (f.rule != "A001") continue;
    EXPECT_EQ(f.file, "src/markov/uses_serve.cpp");
    EXPECT_NE(f.message.find("serve"), std::string::npos);
  }
}

TEST(LintA001, DownwardIncludeIsClean) {
  GraphHarness h;
  h.add("src/markov/api.hpp", "a001_markov_api.hpp");
  h.add("src/serve/ok.cpp", "a001_ok.cpp");
  const auto fs = h.run(test_layers());
  EXPECT_EQ(active_count(fs, "A001"), 0u);
  EXPECT_EQ(active_total(fs), 0u);
}

TEST(LintA001, CrossModuleIncludeOfInternalHeaderFires) {
  GraphHarness h;
  h.add("src/exec/impl_detail.hpp", "a001_exec_detail.hpp");
  h.add("src/noc/uses_detail.cpp", "a001_noc_uses_detail.cpp");
  // noc -> exec is the right direction; the "_detail" marker is the offense.
  const auto fs = h.run(test_layers());
  ASSERT_EQ(active_count(fs, "A001"), 1u);
  for (const lint::Finding& f : fs) {
    if (f.rule != "A001") continue;
    EXPECT_EQ(f.file, "src/noc/uses_detail.cpp");
    EXPECT_NE(f.message.find("internal"), std::string::npos);
  }
}

TEST(LintA002, IncludeCycleFiresOncePerScc) {
  GraphHarness h;
  h.add("src/stream/a002_x.hpp", "a002_x.hpp");
  h.add("src/stream/a002_y.hpp", "a002_y.hpp");
  const auto fs = h.run(test_layers());
  // Same module, so no A001 — exactly one A002 for the two-file SCC.
  EXPECT_EQ(active_count(fs, "A001"), 0u);
  ASSERT_EQ(active_count(fs, "A002"), 1u);
  ASSERT_EQ(h.graph.sccs.size(), 1u);
  EXPECT_EQ(h.graph.sccs[0].size(), 2u);
}

TEST(LintA002, AcyclicIncludesAreClean) {
  GraphHarness h;
  h.add("src/markov/api.hpp", "a001_markov_api.hpp");
  h.add("src/serve/ok.cpp", "a001_ok.cpp");
  h.run(test_layers());
  EXPECT_TRUE(h.graph.sccs.empty());
}

TEST(LintD007, ThreeFileChainFlagsTheOutermostFrame) {
  GraphHarness h;
  h.add("src/markov/leaf.cpp", "d007_leaf.cpp");
  h.add("src/stream/mid.cpp", "d007_mid.cpp");
  h.add("src/serve/entry.cpp", "d007_entry.cpp");
  const auto fs = h.run(test_layers());
  // The suppressed D001 in the leaf seeds taint; serve::handle is the only
  // root (stream::shape has a tainted caller, the leaf is the source).
  ASSERT_EQ(active_count(fs, "D007"), 1u);
  for (const lint::Finding& f : fs) {
    if (f.rule != "D007") continue;
    EXPECT_EQ(f.file, "src/serve/entry.cpp");
    EXPECT_NE(f.message.find("handle"), std::string::npos);
    EXPECT_NE(f.message.find("jitter"), std::string::npos);
    EXPECT_NE(f.message.find(" -> "), std::string::npos);
    EXPECT_NE(f.message.find("src/markov/leaf.cpp"), std::string::npos);
  }
  // The leaf's allow is used (by its own D001), so no X002 either.
  EXPECT_EQ(active_count(fs, "X002"), 0u);
}

TEST(LintD007, CleanLeafProducesNoEscape) {
  GraphHarness h;
  h.add("src/markov/leaf.cpp", "d007_ok_leaf.cpp");
  h.add("src/stream/mid.cpp", "d007_mid.cpp");
  h.add("src/serve/entry.cpp", "d007_entry.cpp");
  const auto fs = h.run(test_layers());
  EXPECT_EQ(active_count(fs, "D007"), 0u);
}

TEST(LintD007, RuleHomePrimitivesDoNotTaint) {
  // Same chain, but the layer config declares markov/ the sanctioned home
  // for D001 — the primitive no longer seeds taint.
  GraphHarness h;
  h.add("src/markov/leaf.cpp", "d007_leaf.cpp");
  h.add("src/stream/mid.cpp", "d007_mid.cpp");
  h.add("src/serve/entry.cpp", "d007_entry.cpp");
  lint::LayerConfig layers = test_layers();
  layers.rule_homes["D001"] = {"markov/"};
  const auto fs = h.run(layers);
  EXPECT_EQ(active_count(fs, "D007"), 0u);
}

TEST(LintX002, StaleSuppressionFires) {
  GraphHarness h;
  h.add("src/traffic/x002_bad.cpp", "x002_bad.cpp");
  const auto fs = h.run(test_layers());
  // The D002 allow matches nothing; the D001 allow is still used.
  ASSERT_EQ(active_count(fs, "X002"), 1u);
  for (const lint::Finding& f : fs) {
    if (f.rule != "X002") continue;
    EXPECT_NE(f.message.find("D002"), std::string::npos);
  }
}

TEST(LintX002, LiveSuppressionStaysQuiet) {
  GraphHarness h;
  h.add("src/traffic/x002_ok.cpp", "x002_ok.cpp");
  const auto fs = h.run(test_layers());
  EXPECT_EQ(active_count(fs, "X002"), 0u);
  EXPECT_EQ(active_total(fs), 0u);
}

TEST(LintGraphDump, RoundTripsWithIdenticalFingerprint) {
  GraphHarness h;
  h.add("src/markov/leaf.cpp", "d007_leaf.cpp");
  h.add("src/stream/mid.cpp", "d007_mid.cpp");
  h.add("src/serve/entry.cpp", "d007_entry.cpp");
  const lint::LayerConfig layers = test_layers();
  const auto fs = h.run(layers);
  std::map<std::string, std::size_t> counts;
  for (const lint::Finding& f : fs) {
    if (!f.suppressed) ++counts[f.rule];
  }
  const lint::GraphDump dump = lint::make_graph_dump(h.graph, layers, counts);
  const std::string json = lint::graph_to_json(dump);

  std::string stored;
  const lint::GraphDump parsed = lint::parse_graph_json(json, &stored);
  // dump -> reload -> identical fingerprint, and a canonical serialization:
  // re-emitting the parsed dump reproduces the bytes exactly.
  EXPECT_EQ(lint::graph_fingerprint(parsed), lint::graph_fingerprint(dump));
  EXPECT_FALSE(stored.empty());
  EXPECT_EQ(lint::graph_to_json(parsed), json);
  // Building the index again from the same sources changes nothing.
  const lint::ProgramGraph again = lint::build_graph(h.files);
  EXPECT_EQ(lint::graph_fingerprint(
                lint::make_graph_dump(again, layers, counts)),
            lint::graph_fingerprint(dump));

  EXPECT_THROW(lint::parse_graph_json("not json"), std::runtime_error);
}

TEST(LintBaseline, PruneDropsEntriesForMissingFiles) {
  Linted v("d002_bad.cpp", fixture_text("d002_bad.cpp"),
           lint::FileKind::kLibrarySource);
  lint::Baseline base = lint::make_baseline(v.findings, v.by_path);
  ASSERT_FALSE(base.empty());
  const std::string ghost = "D002|ghost/deleted.cpp|auto t = now();";
  base[ghost] = 2;

  std::vector<std::string> dropped;
  const lint::Baseline pruned = lint::prune_baseline(base, v.by_path, &dropped);
  EXPECT_EQ(pruned.size(), base.size() - 1);
  EXPECT_EQ(pruned.count(ghost), 0u);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], ghost);
}

// ---- tree-wide gate: the graph pack holds at zero, with zero suppressions --

TEST(LintRepo, GraphRulesCleanZeroSuppressions) {
  namespace stdfs = std::filesystem;
  std::vector<std::string> paths;
  for (const auto& e : stdfs::recursive_directory_iterator(HOLMS_SRC_DIR)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
    paths.push_back(e.path().generic_string());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_FALSE(paths.empty());

  const std::string root(HOLMS_SRC_DIR);
  std::vector<lint::SourceFile> files;
  files.reserve(paths.size());
  std::vector<lint::Finding> per_file;
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel = "src" + p.substr(root.size());
    files.push_back(lint::lex(rel, buf.str(), lint::classify_path(rel)));
    const auto fs = lint::run_rules(files.back());
    per_file.insert(per_file.end(), fs.begin(), fs.end());
  }

  lint::LayerConfig layers;
  ASSERT_TRUE(lint::load_layers_file(HOLMS_LAYERS_FILE, layers));
  const lint::ProgramGraph graph = lint::build_graph(files);
  const auto findings = lint::run_graph_rules(files, graph, layers, per_file);
  // Zero A001/A002/D007/X002 — and none hidden behind suppressions either.
  for (const lint::Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " " << f.rule << " "
                  << f.message << (f.suppressed ? " (suppressed)" : "");
  }
  EXPECT_FALSE(graph.include_edges.empty());
  EXPECT_FALSE(graph.call_edges.empty());
}
