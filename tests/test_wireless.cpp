// Unit tests for the wireless subsystem: modulation, transceiver energy
// management, JSCC (holms::wireless) — paper §4.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"
#include "wireless/jscc.hpp"
#include "wireless/link_sim.hpp"
#include "wireless/modulation.hpp"
#include "wireless/transceiver.hpp"

namespace {

using namespace holms::wireless;

// ---------- modulation ----------

TEST(Modulation, BitsPerSymbol) {
  EXPECT_DOUBLE_EQ(bits_per_symbol(Modulation::kBpsk), 1.0);
  EXPECT_DOUBLE_EQ(bits_per_symbol(Modulation::kQpsk), 2.0);
  EXPECT_DOUBLE_EQ(bits_per_symbol(Modulation::kQam16), 4.0);
  EXPECT_DOUBLE_EQ(bits_per_symbol(Modulation::kQam64), 6.0);
}

TEST(Modulation, QFunctionSanity) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.6448536269514722), 0.05, 1e-6);
  EXPECT_LT(q_function(5.0), 3e-7);
}

class BerMonotone : public ::testing::TestWithParam<Modulation> {};

TEST_P(BerMonotone, DecreasesWithEbn0) {
  double prev = 0.6;
  for (double db = -5.0; db <= 25.0; db += 1.0) {
    const double b = ber(GetParam(), std::pow(10.0, db / 10.0));
    EXPECT_LE(b, prev + 1e-15) << "at " << db << " dB";
    prev = b;
  }
}

TEST_P(BerMonotone, RequiredEbn0IsInverse) {
  for (double target : {1e-3, 1e-5, 1e-7}) {
    const double e = required_ebn0(GetParam(), target);
    EXPECT_NEAR(ber(GetParam(), e), target, target * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(All, BerMonotone,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Modulation, HigherOrderNeedsMoreEnergyPerBit) {
  // At the same target BER, denser constellations need higher Eb/N0.
  const double t = 1e-5;
  EXPECT_LT(required_ebn0(Modulation::kBpsk, t),
            required_ebn0(Modulation::kQam16, t));
  EXPECT_LT(required_ebn0(Modulation::kQam16, t),
            required_ebn0(Modulation::kQam64, t));
}

TEST(Modulation, BpskQpskSamePerBit) {
  for (double e : {1.0, 4.0, 10.0}) {
    EXPECT_NEAR(ber(Modulation::kBpsk, e), ber(Modulation::kQpsk, e), 1e-15);
  }
}

TEST(Modulation, ZeroEbn0IsCoinFlip) {
  EXPECT_DOUBLE_EQ(ber(Modulation::kBpsk, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(ber(Modulation::kQam64, -1.0), 0.5);
}

// ---------- Monte-Carlo link validation ----------

struct McCase {
  Modulation m;
  double ebn0_db;
};

class MonteCarloBer : public ::testing::TestWithParam<McCase> {};

TEST_P(MonteCarloBer, MatchesAnalyticCurve) {
  holms::sim::Rng rng(99);
  const double ebn0 = std::pow(10.0, GetParam().ebn0_db / 10.0);
  const double analytic = ber(GetParam().m, ebn0);
  ASSERT_GT(analytic, 5e-4) << "pick SNRs with measurable error rates";
  const auto r = simulate_awgn_ber(GetParam().m, ebn0, 400000, rng);
  // QAM union-bound approximations are a few percent off; allow 25%.
  EXPECT_NEAR(r.ber, analytic, analytic * 0.25 + 2e-4)
      << modulation_name(GetParam().m) << " @ " << GetParam().ebn0_db
      << " dB";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonteCarloBer,
    ::testing::Values(McCase{Modulation::kBpsk, 2.0},
                      McCase{Modulation::kBpsk, 5.0},
                      McCase{Modulation::kQpsk, 4.0},
                      McCase{Modulation::kQam16, 8.0},
                      McCase{Modulation::kQam16, 11.0},
                      McCase{Modulation::kQam64, 13.0}));

TEST(MonteCarloLink, PacketErrorRateFollowsBer) {
  holms::sim::Rng rng(7);
  const double ebn0 = std::pow(10.0, 6.0 / 10.0);
  const double b = ber(Modulation::kQpsk, ebn0);
  const double expected_per = 1.0 - std::pow(1.0 - b, 256.0);
  const double per =
      simulate_packet_error_rate(Modulation::kQpsk, ebn0, 256, 2000, rng);
  EXPECT_NEAR(per, expected_per, 0.05);
}

TEST(MonteCarloLink, RayleighIsWorseThanAwgn) {
  holms::sim::Rng r1(8), r2(8);
  const double ebn0 = std::pow(10.0, 10.0 / 10.0);
  const auto awgn = simulate_awgn_ber(Modulation::kQpsk, ebn0, 200000, r1);
  const auto fading =
      simulate_rayleigh_ber(Modulation::kQpsk, ebn0, 200000, 1000, r2);
  EXPECT_GT(fading.ber, 4.0 * awgn.ber);
}

TEST(MonteCarloLink, RejectsBadArguments) {
  holms::sim::Rng rng(1);
  EXPECT_THROW(simulate_awgn_ber(Modulation::kBpsk, 0.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(simulate_packet_error_rate(Modulation::kBpsk, 1.0, 0, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(
      simulate_rayleigh_ber(Modulation::kBpsk, 1.0, 100, 0, rng),
      std::invalid_argument);
}

// ---------- coding ----------

TEST(Code, GainGrowsWithConstraintLengthAndSaturates) {
  CodeConfig none;
  EXPECT_DOUBLE_EQ(none.coding_gain(), 1.0);
  double prev = 1.0;
  for (int k : {3, 5, 7, 9}) {
    CodeConfig c;
    c.constraint_length = k;
    EXPECT_GE(c.coding_gain(), prev);
    prev = c.coding_gain();
  }
  CodeConfig k10, k12;
  k10.constraint_length = 10;
  k12.constraint_length = 12;
  EXPECT_NEAR(k10.coding_gain(), k12.coding_gain(), 1e-9);  // saturated
}

TEST(Code, DecodeEnergyExponentialInK) {
  CodeConfig k5, k7;
  k5.constraint_length = 5;
  k7.constraint_length = 7;
  EXPECT_NEAR(k7.decode_energy_nj() / k5.decode_energy_nj(), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(CodeConfig{}.decode_energy_nj(), 0.0);
}

TEST(Code, RateAffectsInfoBitEnergy) {
  // Halving the code rate halves the information bit rate: fixed-power
  // electronics then cost twice as much per info bit.
  RadioModel r;
  CodeConfig uncoded;
  CodeConfig half;
  half.constraint_length = 3;
  half.code_rate = 0.5;
  const double e0 = r.energy_per_info_bit(0.1, Modulation::kQpsk, uncoded);
  const double e1 = r.energy_per_info_bit(0.1, Modulation::kQpsk, half);
  const double radio_part0 = e0;  // no decode energy in the uncoded case
  EXPECT_NEAR(e1 - half.decode_energy_nj() * 1e-9, 2.0 * radio_part0,
              radio_part0 * 0.01);
}

// ---------- transceiver energy management (E7 mechanics) ----------

RadioModel default_radio() { return RadioModel{}; }

EnergyManager::Options default_opts() { return EnergyManager::Options{}; }

TEST(Transceiver, Ebn0ScalesWithPowerAndGain) {
  const RadioModel r = default_radio();
  const double e1 = r.ebn0(0.1, 1e-9, Modulation::kQpsk);
  EXPECT_GT(e1, 0.0);
  EXPECT_NEAR(r.ebn0(0.2, 1e-9, Modulation::kQpsk), 2.0 * e1, 1e-6 * e1);
  EXPECT_NEAR(r.ebn0(0.1, 2e-9, Modulation::kQpsk), 2.0 * e1, 1e-6 * e1);
  // Denser modulation spreads the same SNR over more bits.
  EXPECT_LT(r.ebn0(0.1, 1e-9, Modulation::kQam16), e1);
}

TEST(Transceiver, EnergyPerBitFallsWithModulationOrder) {
  const RadioModel r = default_radio();
  const CodeConfig none;
  EXPECT_GT(r.energy_per_info_bit(0.1, Modulation::kBpsk, none),
            r.energy_per_info_bit(0.1, Modulation::kQam64, none));
}

TEST(Transceiver, EvaluateFlagsInfeasibleLowPower) {
  EnergyManager mgr(default_radio(), default_opts());
  const auto bad = mgr.evaluate(Modulation::kQam64, 0.01, CodeConfig{}, 1e-12);
  EXPECT_FALSE(bad.feasible);
  const auto good = mgr.evaluate(Modulation::kBpsk, 0.5, CodeConfig{}, 1e-8);
  EXPECT_TRUE(good.feasible);
}

TEST(Transceiver, OptimalIsFeasibleAndMinimal) {
  EnergyManager mgr(default_radio(), default_opts());
  const double gain = 3e-10;
  const auto opt = mgr.optimal(gain);
  ASSERT_TRUE(opt.feasible);
  // Spot check: no listed config beats it.
  for (Modulation m : kAllModulations) {
    for (double p : mgr.options().power_levels_w) {
      for (int k : mgr.options().constraint_lengths) {
        CodeConfig c;
        c.constraint_length = k;
        const auto e = mgr.evaluate(m, p, c, gain);
        if (e.feasible) {
          EXPECT_GE(e.energy_per_bit_j, opt.energy_per_bit_j - 1e-18);
        }
      }
    }
  }
}

TEST(Transceiver, GameTheoreticReachesFeasiblePoint) {
  EnergyManager mgr(default_radio(), default_opts());
  for (double gain : {1e-10, 5e-10, 3e-9}) {
    TransceiverConfig start;  // arbitrary initial strategy
    const auto gt = mgr.game_theoretic(gain, start);
    EXPECT_TRUE(gt.feasible) << "gain " << gain;
    const auto opt = mgr.optimal(gain);
    EXPECT_GE(gt.energy_per_bit_j, opt.energy_per_bit_j - 1e-18);
    // Best-response dynamics land close to the joint optimum here.
    EXPECT_LE(gt.energy_per_bit_j, opt.energy_per_bit_j * 1.5);
  }
}

TEST(Transceiver, AdaptationBeatsWorstCaseProvisioning) {
  // The 12%-savings mechanism: a static design provisions for the worst
  // channel; adaptation relaxes power/modulation when the channel is good.
  EnergyManager mgr(default_radio(), default_opts());
  const double worst = 1e-10, good = 3e-9;
  const auto fixed = mgr.static_config(worst);
  ASSERT_TRUE(fixed.feasible);
  const auto adapted = mgr.game_theoretic(good, fixed);
  EXPECT_LT(adapted.energy_per_bit_j, fixed.energy_per_bit_j);
}

TEST(Transceiver, BadChannelFallsBackToRobustConfig) {
  EnergyManager mgr(default_radio(), default_opts());
  TransceiverConfig start;
  const auto c = mgr.game_theoretic(1e-14, start);  // hopeless channel
  // Fallback is defined even when infeasible: strongest configuration.
  EXPECT_EQ(c.modulation, Modulation::kBpsk);
  EXPECT_DOUBLE_EQ(c.tx_power_w, mgr.options().power_levels_w.back());
}

// ---------- JSCC (E8 mechanics) ----------

JsccOptimizer make_jscc() {
  return JsccOptimizer(ImageModel{}, RadioModel{}, JsccOptimizer::Options{});
}

TEST(Jscc, DistortionDecomposes) {
  const JsccOptimizer opt = make_jscc();
  JsccConfig c;
  c.source_rate_bpp = 4.0;
  c.tx_power_w = 0.5;
  c.code.constraint_length = 9;
  const auto clean = opt.evaluate(c, 1e-8);  // excellent channel
  // At R=4: D_source = 2500 * 2^-8 ~= 9.8; channel term ~ 0.
  EXPECT_NEAR(clean.distortion, 2500.0 * std::pow(2.0, -8.0), 0.5);
  EXPECT_TRUE(clean.feasible);
  const auto noisy = opt.evaluate(c, 1e-13);
  EXPECT_GT(noisy.distortion, clean.distortion);
}

TEST(Jscc, HigherSourceRateCostsMoreEnergy) {
  const JsccOptimizer opt = make_jscc();
  JsccConfig lo, hi;
  lo.source_rate_bpp = 0.5;
  hi.source_rate_bpp = 4.0;
  lo.tx_power_w = hi.tx_power_w = 0.1;
  const auto a = opt.evaluate(lo, 1e-9);
  const auto b = opt.evaluate(hi, 1e-9);
  EXPECT_GT(b.total_energy_j, a.total_energy_j);
}

TEST(Jscc, OptimizeIsFeasibleAndBeatsBaselineOnGoodChannel) {
  const JsccOptimizer opt = make_jscc();
  const double worst = 2e-10, good = 5e-9;
  const auto base = opt.baseline(worst);
  ASSERT_TRUE(base.feasible);
  const auto tuned = opt.optimize(good);
  ASSERT_TRUE(tuned.feasible);
  EXPECT_LT(tuned.total_energy_j, base.total_energy_j);
  EXPECT_LE(tuned.distortion, opt.options().max_distortion);
}

TEST(Jscc, OptimizerMatchesExhaustiveSearch) {
  const JsccOptimizer opt = make_jscc();
  for (double gain : {3e-10, 1e-9, 5e-9}) {
    const auto got = opt.optimize(gain);
    // Exhaustive reference.
    JsccConfig best;
    double best_e = 1e99;
    for (double r : opt.options().source_rates) {
      for (double p : opt.options().power_levels_w) {
        for (int k : opt.options().constraint_lengths) {
          JsccConfig c;
          c.source_rate_bpp = r;
          c.tx_power_w = p;
          c.code.constraint_length = k;
          c = opt.evaluate(c, gain);
          if (c.feasible && c.total_energy_j < best_e) {
            best_e = c.total_energy_j;
            best = c;
          }
        }
      }
    }
    ASSERT_TRUE(got.feasible) << gain;
    EXPECT_LE(got.total_energy_j, best_e * 1.05) << gain;
  }
}

TEST(Jscc, PsnrConsistentWithDistortion) {
  const JsccOptimizer opt = make_jscc();
  JsccConfig c;
  c.source_rate_bpp = 2.0;
  c.tx_power_w = 0.35;
  c.code.constraint_length = 7;
  const auto e = opt.evaluate(c, 1e-8);
  EXPECT_NEAR(e.psnr_db, 10.0 * std::log10(255.0 * 255.0 / e.distortion),
              1e-9);
}

}  // namespace
