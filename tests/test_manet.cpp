// Unit tests for the MANET substrate and routing protocols (holms::manet) —
// paper §4.2.
#include <gtest/gtest.h>

#include "manet/network.hpp"
#include "manet/routing.hpp"

namespace {

using holms::sim::Rng;
using namespace holms::manet;

Manet::Params small_params() {
  Manet::Params p;
  p.num_nodes = 25;
  p.field_m = 300.0;
  p.battery_j = 5.0;
  p.radio.range_m = 120.0;
  return p;
}

TEST(Radio, EnergyMonotoneInDistanceAndBits) {
  RadioModel r;
  EXPECT_GT(r.tx_energy(1000, 100.0), r.tx_energy(1000, 10.0));
  EXPECT_GT(r.tx_energy(2000, 50.0), r.tx_energy(1000, 50.0));
  EXPECT_NEAR(r.rx_energy(1000), 1000 * 50e-9, 1e-15);
}

TEST(Manet, NodesStartInFieldWithFullBattery) {
  Manet net(small_params(), Rng(1));
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& n = net.node(i);
    EXPECT_GE(n.pos.x, 0.0);
    EXPECT_LE(n.pos.x, 300.0);
    EXPECT_GE(n.pos.y, 0.0);
    EXPECT_LE(n.pos.y, 300.0);
    EXPECT_DOUBLE_EQ(n.battery_j, 5.0);
    EXPECT_TRUE(n.alive);
    EXPECT_DOUBLE_EQ(net.residual_fraction(i), 1.0);
  }
}

TEST(Manet, MobilityStaysInField) {
  Manet net(small_params(), Rng(2));
  for (int step = 0; step < 500; ++step) net.move(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_GE(net.node(i).pos.x, -1e-9);
    EXPECT_LE(net.node(i).pos.x, 300.0 + 1e-9);
    EXPECT_GE(net.node(i).pos.y, -1e-9);
    EXPECT_LE(net.node(i).pos.y, 300.0 + 1e-9);
  }
}

TEST(Manet, ConnectivityByRangeAndLiveness) {
  Manet::Params p = small_params();
  Manet net(p, Rng(3));
  bool found_pair = false;
  for (std::size_t i = 0; i < net.size() && !found_pair; ++i) {
    for (std::size_t j = 0; j < net.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(net.connected(i, j),
                net.link_distance(i, j) <= p.radio.range_m);
      if (net.connected(i, j)) found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
  EXPECT_FALSE(net.connected(0, 0));
}

TEST(Manet, DrainKillsNodeAtZero) {
  Manet net(small_params(), Rng(4));
  net.drain(0, 4.0);
  EXPECT_TRUE(net.node(0).alive);
  net.drain(0, 2.0);
  EXPECT_FALSE(net.node(0).alive);
  EXPECT_DOUBLE_EQ(net.node(0).battery_j, 0.0);
  EXPECT_EQ(net.alive_count(), net.size() - 1);
  // Draining a dead node is a no-op.
  net.drain(0, 1.0);
  EXPECT_DOUBLE_EQ(net.node(0).battery_j, 0.0);
}

TEST(Manet, ChargeLinkBillsBothEndpoints) {
  Manet net(small_params(), Rng(5));
  const double b0 = net.node(0).battery_j;
  const double b1 = net.node(1).battery_j;
  net.charge_link(0, 1, 1e6);
  EXPECT_LT(net.node(0).battery_j, b0);  // transmitter pays more
  EXPECT_LT(net.node(1).battery_j, b1);
  EXPECT_LT(net.node(0).battery_j, net.node(1).battery_j);
}

TEST(Manet, DischargeEwmaTracksDrain) {
  Manet net(small_params(), Rng(6));
  net.drain(3, 1.0);
  net.tick_discharge(1.0);
  EXPECT_NEAR(net.node(3).discharge_ewma_w, 0.3, 1e-9);  // alpha = 0.3
  net.tick_discharge(1.0);  // no drain this tick -> decays
  EXPECT_NEAR(net.node(3).discharge_ewma_w, 0.21, 1e-9);
}

// ---------- path algorithms ----------

// A deterministic 4-node line topology for path checks: positions forced by
// draining randomness out of the constructor and overwriting is not exposed,
// so use a large field and find a connected pair instead.
TEST(Dijkstra, FindsPathAndRespectsCosts) {
  Manet::Params p = small_params();
  p.num_nodes = 40;
  p.field_m = 250.0;  // dense -> connected w.h.p.
  Manet net(p, Rng(7));
  const auto hop_count = [&](std::size_t a, std::size_t b) {
    return dijkstra_path(net, a, b,
                         [](std::size_t, std::size_t) { return 1.0; });
  };
  int found = 0;
  for (std::size_t d = 1; d < net.size(); ++d) {
    const auto path = hop_count(0, d);
    if (path.empty()) continue;
    ++found;
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), d);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(net.connected(path[i], path[i + 1]));
    }
  }
  EXPECT_GT(found, 20);
}

TEST(Dijkstra, UnreachableReturnsEmpty) {
  Manet::Params p = small_params();
  p.num_nodes = 2;
  p.field_m = 10000.0;  // two nodes, far apart w.h.p.
  Manet net(p, Rng(8));
  if (!net.connected(0, 1)) {
    EXPECT_TRUE(dijkstra_path(net, 0, 1, [](std::size_t, std::size_t) {
                  return 1.0;
                }).empty());
  } else {
    GTEST_SKIP() << "nodes happened to be in range";
  }
}

TEST(WidestPath, PrefersHighWidthNodes) {
  Manet::Params p = small_params();
  p.num_nodes = 40;
  p.field_m = 250.0;
  Manet net(p, Rng(9));
  // Widths: node index as width -> the path should avoid low-index relays
  // when alternatives exist; at minimum the bottleneck is maximal, which we
  // verify against a brute-force check on the shortest alternative.
  const auto width = [](std::size_t i) { return static_cast<double>(i); };
  for (std::size_t d = 1; d < 10; ++d) {
    const auto wp = widest_path(net, 0, d, width);
    if (wp.empty()) continue;
    // Bottleneck of the returned path (excluding source).
    double bn = 1e18;
    for (std::size_t i = 1; i < wp.size(); ++i) {
      bn = std::min(bn, width(wp[i]));
    }
    // Any simple alternative: the min-hop path has bottleneck <= bn.
    const auto sp = dijkstra_path(
        net, 0, d, [](std::size_t, std::size_t) { return 1.0; });
    if (!sp.empty()) {
      double bn_sp = 1e18;
      for (std::size_t i = 1; i < sp.size(); ++i) {
        bn_sp = std::min(bn_sp, width(sp[i]));
      }
      EXPECT_GE(bn, bn_sp);
    }
  }
}

// ---------- protocols ----------

TEST(Protocols, NamesAreDistinct) {
  EXPECT_NE(protocol_name(Protocol::kMinPower),
            protocol_name(Protocol::kBatteryCost));
  EXPECT_NE(protocol_name(Protocol::kBatteryCost),
            protocol_name(Protocol::kLifetimePrediction));
}

TEST(Protocols, BatteryCostRoutesAroundDrainedNodes) {
  Manet::Params p = small_params();
  p.num_nodes = 60;
  p.field_m = 300.0;
  Manet net(p, Rng(10));
  // Find any 2-hop-or-more MPR route, drain its middle node, and check the
  // battery-cost protocol avoids it afterwards.
  for (std::size_t dst = 1; dst < net.size(); ++dst) {
    auto route = find_route(net, Protocol::kMinPower, 0, dst, 4096);
    if (route.size() < 3) continue;
    const std::size_t relay = route[1];
    net.drain(relay, net.node(relay).battery_j * 0.98);  // nearly dead
    const auto after =
        find_route(net, Protocol::kBatteryCost, 0, dst, 4096);
    if (after.empty()) continue;
    bool uses_relay = false;
    for (std::size_t i = 1; i + 1 < after.size(); ++i) {
      if (after[i] == relay) uses_relay = true;
    }
    // With 60 nodes on a 300m field an alternative exists w.h.p.
    EXPECT_FALSE(uses_relay);
    return;
  }
  GTEST_SKIP() << "no multi-hop route found";
}

LifetimeConfig quick_cfg() {
  LifetimeConfig c;
  c.num_flows = 6;
  c.packets_per_second = 20.0;
  c.max_time_s = 4000.0;
  c.mobile = false;  // static topology isolates the energy effect
  return c;
}

TEST(Lifetime, SimulationTerminatesWithDeaths) {
  const LifetimeResult r =
      simulate_lifetime(Protocol::kMinPower, small_params(), quick_cfg(), 11);
  EXPECT_GT(r.packets_sent, 1000u);
  EXPECT_GT(r.delivery_ratio, 0.5);
  EXPECT_GT(r.first_death_s, 0.0);
  EXPECT_GE(r.lifetime_s, r.first_death_s);
  EXPECT_GT(r.route_discoveries, 0u);
  EXPECT_GT(r.control_energy_j, 0.0);
}

TEST(Lifetime, BatteryAwareProtocolsOutliveMinPower) {
  // The §4.2 claim (shape): lifetime-aware routing beats min-power routing
  // on network lifetime.  Average over seeds for robustness.
  double mpr = 0.0, bclar = 0.0, lpr = 0.0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    mpr += simulate_lifetime(Protocol::kMinPower, small_params(), quick_cfg(),
                             100 + s)
               .lifetime_s;
    bclar += simulate_lifetime(Protocol::kBatteryCost, small_params(),
                               quick_cfg(), 100 + s)
                 .lifetime_s;
    lpr += simulate_lifetime(Protocol::kLifetimePrediction, small_params(),
                             quick_cfg(), 100 + s)
               .lifetime_s;
  }
  EXPECT_GT(bclar, mpr * 1.05);
  EXPECT_GT(lpr, mpr * 1.05);
}

TEST(Lifetime, BatteryAwareBalancesResidualEnergy) {
  const LifetimeResult mpr = simulate_lifetime(
      Protocol::kMinPower, small_params(), quick_cfg(), 42);
  const LifetimeResult bc = simulate_lifetime(
      Protocol::kBatteryCost, small_params(), quick_cfg(), 42);
  // Load balancing shows up as a tighter residual-energy distribution.
  EXPECT_LT(bc.residual_stddev_at_end, mpr.residual_stddev_at_end * 1.2);
}

// ---------- sleep scheduling (GAF) ----------

TEST(Gaf, ElectionKeepsOneLeaderPerCellPlusEndpoints) {
  Manet::Params p = small_params();
  p.num_nodes = 50;
  Manet net(p, Rng(20));
  const std::vector<std::size_t> endpoints{0, 1};
  const std::size_t awake = gaf_elect_leaders(net, endpoints);
  EXPECT_LT(awake, net.size());  // somebody actually sleeps
  EXPECT_TRUE(net.is_awake(0));
  EXPECT_TRUE(net.is_awake(1));
  // Sleeping nodes are invisible to connectivity.
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).alive && net.node(i).asleep) {
      for (std::size_t j = 0; j < net.size(); ++j) {
        EXPECT_FALSE(net.connected(i, j));
      }
    }
  }
}

TEST(Gaf, SleepersDrainSlowerThanListeners) {
  Manet::Params p = small_params();
  Manet net(p, Rng(21));
  net.set_asleep(0, true);
  const double b0 = net.node(0).battery_j;
  const double b1 = net.node(1).battery_j;
  net.charge_idle(1000.0);
  const double sleep_drain = b0 - net.node(0).battery_j;
  const double listen_drain = b1 - net.node(1).battery_j;
  EXPECT_LT(sleep_drain, listen_drain / 10.0);
}

TEST(Gaf, ExtendsLifetimeUnderLightTraffic) {
  // With light traffic the idle-listening drain dominates: sleeping most of
  // the network buys a clear lifetime win over always-on MPR.
  Manet::Params p = small_params();
  p.num_nodes = 50;
  LifetimeConfig cfg = quick_cfg();
  cfg.packets_per_second = 2.0;
  cfg.num_flows = 3;
  cfg.max_time_s = 30000.0;
  double mpr = 0.0, gaf = 0.0;
  for (int s = 0; s < 2; ++s) {
    mpr += simulate_lifetime(Protocol::kMinPower, p, cfg, 300 + s).lifetime_s;
    gaf += simulate_lifetime(Protocol::kGafSleep, p, cfg, 300 + s).lifetime_s;
  }
  EXPECT_GT(gaf, mpr * 1.15);
}

TEST(Gaf, AdjacentCellLeadersAreAlwaysInRange) {
  // The r/sqrt(5) grid guarantees any node of a cell reaches any node of a
  // 4-adjacent cell; verify on the elected leaders.
  Manet::Params p = small_params();
  p.num_nodes = 60;
  Manet net(p, Rng(25));
  gaf_elect_leaders(net, {});
  const double cell = p.radio.range_m / std::sqrt(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!net.is_awake(i)) continue;
    for (std::size_t j = 0; j < net.size(); ++j) {
      if (i == j || !net.is_awake(j)) continue;
      const auto& a = net.node(i).pos;
      const auto& b = net.node(j).pos;
      const bool adjacent_cells =
          std::abs(std::floor(a.x / cell) - std::floor(b.x / cell)) +
              std::abs(std::floor(a.y / cell) - std::floor(b.y / cell)) <=
          1.0;
      if (adjacent_cells) EXPECT_TRUE(net.connected(i, j));
    }
  }
}

TEST(Gaf, DeliveryStaysHigh) {
  Manet::Params p = small_params();
  p.num_nodes = 50;
  const LifetimeResult r =
      simulate_lifetime(Protocol::kGafSleep, p, quick_cfg(), 31);
  EXPECT_GT(r.delivery_ratio, 0.85);
}

TEST(Lifetime, MorePacketsDrainFaster) {
  LifetimeConfig light = quick_cfg();
  light.packets_per_second = 5.0;
  LifetimeConfig heavy = quick_cfg();
  heavy.packets_per_second = 40.0;
  const auto rl =
      simulate_lifetime(Protocol::kMinPower, small_params(), light, 13);
  const auto rh =
      simulate_lifetime(Protocol::kMinPower, small_params(), heavy, 13);
  EXPECT_GT(rl.lifetime_s, rh.lifetime_s);
}

}  // namespace
