#pragma once
// C004 negative.
struct Foo {};
