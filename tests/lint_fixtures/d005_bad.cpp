// Positive fixture for D005: blocking primitives in library code.
#include <chrono>
#include <mutex>
#include <thread>

namespace holms::demo {

inline void nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // finding 1
  usleep(100);                                                 // finding 2
}

struct Guarded {
  std::mutex mu;               // finding 3
  std::condition_variable cv;  // finding 4

  void touch() {
    std::unique_lock lk(mu);   // finding 5
    cv.wait(lk);               // member call: not a finding
  }
};

}  // namespace holms::demo
