// Negative fixture for D005: lookalike identifiers, member calls, non-std
// qualification and own-type declarations must stay clean.

namespace holms::demo {

struct Waiter {
  int sleep_budget = 0;  // 'sleep_budget' is not 'sleep'
  void rest();
};

inline void drive(Waiter& w) {
  w.rest();                // member call
  w.sleep_budget = 3;
}

inline int sim_sleep_slots(int n) { return n; }  // substring, not a call

// A non-std library's own synchronization vocabulary: qualified uses do not
// name the std primitives, and `struct mutex;` declares a new type.
namespace rt {
struct mutex;
struct lock_guard;
}  // namespace rt
inline rt::mutex* make_lock_table() { return nullptr; }

}  // namespace holms::demo
