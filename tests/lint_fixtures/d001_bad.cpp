// D001 positive: std engine + distribution + rand() in library code.
#include <random>
double draw() {
  std::mt19937 gen(123);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return u(gen) + static_cast<double>(rand());
}
