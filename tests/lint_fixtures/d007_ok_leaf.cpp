// Clean leaf with the same signature as d007_leaf.cpp: swapping it into the
// chain must make every D007 disappear.
namespace holms::markov {

int jitter() { return 3; }

}  // namespace holms::markov
