#pragma once
// Other half of the include cycle.
#include "stream/a002_x.hpp"

namespace holms::stream {
struct YNode {
  int id = 0;
};
}
