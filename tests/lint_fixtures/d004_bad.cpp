// D004 positive: mutable statics at namespace scope.
static int call_count;
namespace holms {
static double last_result = 0.0;
}
