#pragma once
// C003 positive: using namespace in a header.
#include <vector>
using namespace std;
