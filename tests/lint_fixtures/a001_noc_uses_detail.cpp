// noc (layer 5) may depend on exec (layer 0), but not on exec's internal
// headers: the "_detail" marker makes this include an A001 even though the
// direction is fine.
#include "exec/impl_detail.hpp"

namespace holms::noc {
int reserve() { return holms::exec::detail::scratch_slots(); }
}
