// A live suppression: the allow still matches a real D002 on its line, so
// X002 stays quiet.
namespace holms::traffic {

long stamp() {
  // HOLMS_LINT_ALLOW(D002): fixture — annotated wall-clock read
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace holms::traffic
