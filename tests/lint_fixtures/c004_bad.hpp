// C004 positive: no #pragma once anywhere in this header.
struct Foo {};
