#pragma once
// Public header of the (fixture) serve module — top of the layer DAG.
namespace holms::serve {
int service_version();
}
