// D002 negative: simulated time and member functions named like clocks.
struct Sim { double now() const { return t_; } double t_ = 0.0; };
double service_time(double x) { return x * 2.0; }
double run(const Sim& sim) { return sim.now() + service_time(1.0); }
