// D003 negative: membership tests and ordered iteration are fine.
#include <map>
#include <unordered_set>
double sum(const std::map<int, double>& m, const std::unordered_set<int>& skip) {
  double s = 0.0;
  for (const auto& [k, v] : m) {
    // HOLMS_LINT_ALLOW(D006): fixture exercises D003 only; ordered-map walk.
    if (skip.count(k) == 0) s += v;
  }
  return s;
}
