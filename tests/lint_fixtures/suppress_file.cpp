// HOLMS_LINT_ALLOW_FILE(D002): fixture — whole-file allowlisting
#include <chrono>
long a() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long b() { return std::chrono::system_clock::now().time_since_epoch().count(); }
