// D003 positive: range-for over an unordered container.
#include <unordered_map>
#include <string>
double sum(const std::unordered_map<std::string, double>& weights) {
  double s = 0.0;
  for (const auto& [k, v] : weights) s += v;
  return s;
}
