#pragma once
// Half of a deliberate include cycle (same module, so no A001 — the SCC is
// the only offense).
#include "stream/a002_y.hpp"

namespace holms::stream {
struct XNode {
  int id = 0;
};
}
