#pragma once
// Module-internal header: the "_detail" marker makes it non-public, so even
// correctly-layered modules may not include it from outside exec/.
namespace holms::exec::detail {
int scratch_slots();
}
