// H001 negative: formatting into buffers/strings is fine, and so are
// identifiers that merely contain the banned names.
#include <cstdio>
#include <string>
std::string debug(int x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", x);
  return buf;
}
