// Raw string literals (with and without encoding prefixes) must be opaque to
// the rules: everything inside is data, not code.  Exactly one real D001
// lives at the bottom as the positive control.
namespace holms::stream {

const char* plain = R"(std::rand() and time(nullptr) inside a raw string)";
const char* utf8 = u8R"x(srand(42); "inner quotes" std::mt19937 gen;)x";
const wchar_t* wide = LR"(std::random_device rd;)";
const char16_t* u16 = uR"(printf("hello"))";
const char32_t* u32 = UR"delim(std::cout << "x";)delim";
const char* prefixed = u8"std::rand() \" still a string";
const wchar_t* wprefixed = L"time(nullptr)";

int real_violation() {
  return std::rand();  // the one finding this fixture should produce
}

}  // namespace holms::stream
