// Deliberate layering violation: markov (layer 2) reaching up into serve
// (layer 9).  The include edge, not any symbol use, is the offense.
#include "serve/api.hpp"

namespace holms::markov {
int peek_service() { return holms::serve::service_version(); }
}
