// Bottom of the 3-file D007 chain: a suppressed D001 primitive.  The ALLOW
// keeps the per-file rule quiet, but the taint still propagates — that is
// the whole point of the escape analysis.
namespace holms::markov {

int jitter() {
  return std::rand() % 7;  // HOLMS_LINT_ALLOW(D001): fixture chain source
}

}  // namespace holms::markov
