// D004 negative: constants, static functions, and function-local statics
// with const are all allowed.
static constexpr int kLimit = 8;
static const double kScale = 2.0;
static int helper(int x) { return x + kLimit; }
namespace holms {
int run(int x) {
  static const int base = 3;
  return helper(x) + base;
}
}
