#pragma once
// C001 positive: public Params/Options structs without validate().
struct SolverOptions {
  int max_iterations = 100;
};
class Widget {
 public:
  struct Params {
    double rate = 1.0;
  };
};
