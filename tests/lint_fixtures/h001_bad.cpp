// H001 positive: direct console output from library code.
#include <cstdio>
#include <iostream>
void debug(int x) {
  std::cout << "x = " << x << "\n";
  printf("%d\n", x);
}
