// A stale suppression: the allow names D002 but nothing on its line reads a
// clock, so the annotation itself becomes the finding.  The D001 allow below
// is genuinely used and must stay silent.
namespace holms::traffic {

int quiet() {
  return 12;  // HOLMS_LINT_ALLOW(D002): the clock read this excused is gone
}

int noisy() {
  return std::rand();  // HOLMS_LINT_ALLOW(D001): fixture control, still live
}

}  // namespace holms::traffic
