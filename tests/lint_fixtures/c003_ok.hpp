#pragma once
// C003 negative: qualified names and scoped aliases only.
#include <vector>
namespace holms {
using Row = std::vector<double>;
}
