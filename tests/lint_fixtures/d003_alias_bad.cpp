// D003 positive: range-for over unordered containers reached through a
// using-alias, a typedef, and an alias of an alias.
#include <unordered_map>
#include <unordered_set>
using Index = std::unordered_map<int, int>;
typedef std::unordered_set<int> IdSet;
using IndexAlias = Index;
int sum_all(const Index& idx, const IdSet& ids, IndexAlias& again) {
  int s = 0;
  for (const auto& kv : idx) s += kv.second;
  for (int v : ids) s += v;
  for (const auto& kv : again) s += kv.second;
  return s;
}
