// D001 negative: draws through sim::Rng; identifiers that merely *contain*
// banned names (mm1k_distribution) and member accesses (q.rand()) must not
// fire, and neither may rng.normal(...) on the wrapper itself.
#include "sim/random.hpp"
std::vector<double> mm1k_distribution(double lambda, double mu, int k);
struct Queue;
double via_member(Queue& q) { return q.rand(); }
double use(holms::sim::Rng& rng) {
  return rng.uniform() + rng.normal(0.0, 1.0);
}
