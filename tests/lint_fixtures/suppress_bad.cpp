// Malformed suppressions: missing reason and unknown rule id -> X001, and
// the underlying findings stay live.
#include <chrono>
long stamp() {
  // HOLMS_LINT_ALLOW(D002)
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
long stamp2() {
  // HOLMS_LINT_ALLOW(D999): no such rule
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
