#pragma once
// Public header of the (fixture) markov module — low in the layer DAG.
namespace holms::markov {
double stationary_mass();
}
