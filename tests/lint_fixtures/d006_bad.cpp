// Positive fixture for D006: scalar floating-point reduction loops.
#include <cstddef>
#include <vector>

namespace holms::demo {

inline double total(const std::vector<double>& xs) {
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];  // finding 1
  }
  return acc;
}

inline double product(const std::vector<double>& xs) {
  double prod = 1.0;
  for (double x : xs) prod *= x;  // finding 2 (single-statement body)
  return prod;
}

inline float drain(const std::vector<float>& xs) {
  float level = 0.0f;
  std::size_t i = 0;
  while (i < xs.size()) {
    level += xs[i];  // finding 3 (while loop)
    ++i;
  }
  return level;
}

struct Meter {
  double energy_j = 0.0;
  void charge(const std::vector<double>& js) {
    for (double j : js) {
      energy_j += j;  // finding 4 (member declared double in this file)
    }
  }
};

}  // namespace holms::demo
