// D002 positive: wall-clock reads in library code.
#include <chrono>
#include <ctime>
long stamp() {
  auto t = std::chrono::steady_clock::now();
  return static_cast<long>(time(nullptr)) + t.time_since_epoch().count();
}
