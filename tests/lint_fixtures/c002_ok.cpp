// C002 negative: the typed holms hierarchy.
#include "exec/error.hpp"
void check(int x) {
  if (x < 0) throw holms::InvalidArgument("x must be >= 0");
}
