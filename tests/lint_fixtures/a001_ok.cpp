// Correct layering: serve (layer 9) depends down the DAG on markov (layer 2).
#include "markov/api.hpp"

namespace holms::serve {
double weigh() { return holms::markov::stationary_mass(); }
}
