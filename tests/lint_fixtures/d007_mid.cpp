// Middle of the D007 chain: no primitive of its own, taint arrives through
// the call to markov::jitter.
namespace holms::stream {

int shape() { return holms::markov::jitter() + 1; }

}  // namespace holms::stream
