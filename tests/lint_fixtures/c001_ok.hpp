#pragma once
// C001 negative: validate() present; non-Params structs are out of scope.
struct SolverOptions {
  int max_iterations = 100;
  void validate() const;
};
struct SolverResult {  // not *Params / *Options: no validate() required
  double value = 0.0;
};
struct Params;  // forward declaration: no definition to check
