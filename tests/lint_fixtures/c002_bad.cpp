// C002 positive: bare std exception escaping a library API.
#include <stdexcept>
void check(int x) {
  if (x < 0) throw std::invalid_argument("x must be >= 0");
}
