// Top of the D007 chain: the outermost tainted frame, where the single
// finding anchors with the full chain as evidence.
namespace holms::serve {

int handle() { return holms::stream::shape(); }

}  // namespace holms::serve
