// Negative fixture for D006: integer accumulators, non-compound FP writes,
// subscripted stores, reductions outside loops and annotated sites stay
// clean.
#include <cstddef>
#include <vector>

namespace holms::demo {

inline std::size_t count_up(const std::vector<int>& xs) {
  std::size_t n = 0;
  for (int x : xs) n += static_cast<std::size_t>(x);  // integer accumulator
  return n;
}

inline void scale(std::vector<double>& xs, double k) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] *= k;  // subscripted elementwise store, not a reduction
  }
}

inline double assign_last(const std::vector<double>& xs) {
  double last = 0.0;
  for (double x : xs) last = x;  // plain assignment, order-safe overwrite
  return last;
}

inline double straight_line(double a, double b) {
  double acc = a;
  acc += b;  // not inside a loop
  return acc;
}

inline double annotated(const std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) {
    // HOLMS_LINT_ALLOW(D006): fixed iteration order (plain vector walk in
    // one TU); cold path, not worth a lane kernel.
    acc += x;
  }
  return acc;
}

}  // namespace holms::demo
