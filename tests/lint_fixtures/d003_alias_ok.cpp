// D003 negative: aliases of *ordered* containers iterate freely, and an
// aliased unordered container used only for lookups stays clean.
#include <map>
#include <unordered_map>
#include <vector>
using Ordered = std::map<int, int>;
typedef std::vector<int> Row;
using Index = std::unordered_map<int, int>;
int lookup(const Ordered& ordered, const Row& row, const Index& idx, int k) {
  int s = idx.count(k) ? idx.at(k) : 0;
  for (const auto& kv : ordered) s += kv.second;
  for (int v : row) s += v;
  return s;
}
