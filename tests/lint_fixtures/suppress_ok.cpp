// Suppression behavior: a reasoned allow-annotation on the offending line
// (or alone on the line directly above it) silences exactly that rule there.
#include <chrono>
long stamp() {
  // HOLMS_LINT_ALLOW(D002): fixture — pretend this is observability-only
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
long stamp2() {
  auto t = std::chrono::steady_clock::now();  // HOLMS_LINT_ALLOW(D002): trailing form
  return t.time_since_epoch().count();
}
