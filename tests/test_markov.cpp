// Unit tests for the analytical engine (holms::markov) — paper §2.2.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain.hpp"
#include "markov/jackson.hpp"
#include "markov/queueing.hpp"

namespace {

using holms::markov::Ctmc;
using holms::markov::Dtmc;
using holms::markov::ProducerConsumerModel;
using holms::markov::SolveOptions;
using holms::markov::SolveResult;
using holms::markov::SteadyStateMethod;

SolveOptions method(SteadyStateMethod m) {
  SolveOptions o;
  o.method = m;
  return o;
}

// Two-state chain with known stationary distribution p/(p+q), q/(p+q).
Dtmc two_state(double p, double q) {
  Dtmc d(2);
  d.set(0, 0, 1.0 - p);
  d.set(0, 1, p);
  d.set(1, 0, q);
  d.set(1, 1, 1.0 - q);
  return d;
}

class DtmcSolvers
    : public ::testing::TestWithParam<SteadyStateMethod> {};

TEST_P(DtmcSolvers, TwoStateAnalytic) {
  const Dtmc d = two_state(0.3, 0.1);
  const SolveResult r = d.steady_state(method(GetParam()));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.distribution[0], 0.25, 1e-8);
  EXPECT_NEAR(r.distribution[1], 0.75, 1e-8);
}

TEST_P(DtmcSolvers, DistributionSumsToOne) {
  Dtmc d(4);
  // Ring with self-loops.
  for (std::size_t i = 0; i < 4; ++i) {
    d.set(i, i, 0.5);
    d.set(i, (i + 1) % 4, 0.5);
  }
  const SolveResult r = d.steady_state(method(GetParam()));
  double sum = 0.0;
  for (double x : r.distribution) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double x : r.distribution) EXPECT_NEAR(x, 0.25, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DtmcSolvers,
                         ::testing::Values(SteadyStateMethod::kPowerIteration,
                                           SteadyStateMethod::kGaussSeidel,
                                           SteadyStateMethod::kDirectLU));

TEST(Dtmc, IsStochasticDetectsBadRows) {
  Dtmc d = two_state(0.3, 0.1);
  EXPECT_TRUE(d.is_stochastic());
  d.set(0, 1, 0.9);  // row 0 now sums to 1.6
  EXPECT_FALSE(d.is_stochastic());
}

TEST(Dtmc, TransientConvergesToSteadyState) {
  const Dtmc d = two_state(0.3, 0.1);
  const std::vector<double> init{1.0, 0.0};
  const auto pi100 = d.transient(init, 200);
  EXPECT_NEAR(pi100[0], 0.25, 1e-6);
  EXPECT_NEAR(pi100[1], 0.75, 1e-6);
}

TEST(Dtmc, TransientOneStepIsMatrixRow) {
  const Dtmc d = two_state(0.3, 0.1);
  const auto pi = d.transient(std::vector<double>{1.0, 0.0}, 1);
  EXPECT_NEAR(pi[0], 0.7, 1e-12);
  EXPECT_NEAR(pi[1], 0.3, 1e-12);
}

TEST(Ctmc, TwoStateSteadyState) {
  // Rates 0->1 = 2, 1->0 = 6: pi = (0.75, 0.25).
  Ctmc c(2);
  c.set_rate(0, 1, 2.0);
  c.set_rate(1, 0, 6.0);
  for (auto m : {SteadyStateMethod::kPowerIteration,
                 SteadyStateMethod::kGaussSeidel,
                 SteadyStateMethod::kDirectLU}) {
    const SolveResult r = c.steady_state(method(m));
    EXPECT_NEAR(r.distribution[0], 0.75, 1e-7) << static_cast<int>(m);
    EXPECT_NEAR(r.distribution[1], 0.25, 1e-7) << static_cast<int>(m);
  }
}

TEST(Ctmc, ExitRateIsRowSum) {
  Ctmc c(3);
  c.set_rate(0, 1, 2.0);
  c.set_rate(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 5.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 0.0);
}

TEST(Ctmc, TransientMatchesAnalyticTwoState) {
  // For rates a=1 (0->1), b=3 (1->0): p1(t) = a/(a+b) (1 - e^{-(a+b)t}).
  Ctmc c(2);
  c.set_rate(0, 1, 1.0);
  c.set_rate(1, 0, 3.0);
  const std::vector<double> init{1.0, 0.0};
  for (double t : {0.1, 0.5, 2.0}) {
    const auto pi = c.transient(init, t);
    const double expected = 0.25 * (1.0 - std::exp(-4.0 * t));
    EXPECT_NEAR(pi[1], expected, 1e-6) << "t=" << t;
  }
}

TEST(Ctmc, TransientAtZeroIsInitial) {
  Ctmc c(2);
  c.set_rate(0, 1, 1.0);
  c.set_rate(1, 0, 1.0);
  const auto pi = c.transient(std::vector<double>{0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Ctmc, UniformizedChainIsStochastic) {
  Ctmc c(3);
  c.set_rate(0, 1, 1.0);
  c.set_rate(1, 2, 2.0);
  c.set_rate(2, 0, 0.5);
  EXPECT_TRUE(c.uniformized().is_stochastic());
}

TEST(ExpectedReward, ComputesWeightedSum) {
  const std::vector<double> pi{0.25, 0.75};
  const double r = holms::markov::expected_reward(
      pi, [](std::size_t i) { return i == 0 ? 4.0 : 8.0; });
  EXPECT_DOUBLE_EQ(r, 7.0);
}

// ---------- absorbing chains ----------

TEST(Absorbing, GamblersRuinStepCount) {
  // States 0..4, p = 0.5 random walk, 0 and 4 absorbing.
  // Expected steps from i: i * (4 - i).
  holms::markov::Dtmc d(5);
  d.set(0, 0, 1.0);
  d.set(4, 4, 1.0);
  for (std::size_t i = 1; i <= 3; ++i) {
    d.set(i, i - 1, 0.5);
    d.set(i, i + 1, 0.5);
  }
  const std::vector<bool> abs_flags{true, false, false, false, true};
  const auto r = holms::markov::absorbing_analysis(d, abs_flags);
  EXPECT_DOUBLE_EQ(r.expected_steps[0], 0.0);
  EXPECT_NEAR(r.expected_steps[1], 3.0, 1e-9);
  EXPECT_NEAR(r.expected_steps[2], 4.0, 1e-9);
  EXPECT_NEAR(r.expected_steps[3], 3.0, 1e-9);
}

TEST(Absorbing, RuinProbabilities) {
  holms::markov::Dtmc d(5);
  d.set(0, 0, 1.0);
  d.set(4, 4, 1.0);
  for (std::size_t i = 1; i <= 3; ++i) {
    d.set(i, i - 1, 0.5);
    d.set(i, i + 1, 0.5);
  }
  const auto r = holms::markov::absorbing_analysis(
      d, {true, false, false, false, true});
  ASSERT_EQ(r.absorbing_states.size(), 2u);
  // Fair walk: P(hit 4 from i) = i/4.
  for (std::size_t i = 0; i <= 4; ++i) {
    const double p_hi = r.absorption_probability.at(i, 1);
    const double p_lo = r.absorption_probability.at(i, 0);
    EXPECT_NEAR(p_hi, static_cast<double>(i) / 4.0, 1e-9);
    EXPECT_NEAR(p_lo + p_hi, 1.0, 1e-9);
  }
}

TEST(Absorbing, RejectsNoAbsorbingState) {
  const holms::markov::Dtmc d = two_state(0.3, 0.1);
  EXPECT_THROW(holms::markov::absorbing_analysis(d, {false, false}),
               std::invalid_argument);
}

TEST(Absorbing, RejectsUnreachableAbsorption) {
  holms::markov::Dtmc d(3);
  d.set(0, 0, 1.0);  // absorbing
  d.set(1, 2, 1.0);  // 1 <-> 2 closed class, never reaches 0
  d.set(2, 1, 1.0);
  EXPECT_THROW(
      holms::markov::absorbing_analysis(d, {true, false, false}),
      std::runtime_error);
}

// ---------- queueing formulas ----------

TEST(Mm1, LittlesLawHolds) {
  const auto m = holms::markov::mm1(2.0, 5.0);
  EXPECT_NEAR(m.mean_queue_length, m.throughput * m.mean_waiting_time, 1e-12);
  EXPECT_NEAR(m.utilization, 0.4, 1e-12);
  EXPECT_NEAR(m.mean_queue_length, 0.4 / 0.6, 1e-12);
}

TEST(Mm1, RejectsUnstable) {
  EXPECT_THROW(holms::markov::mm1(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(holms::markov::mm1(6.0, 5.0), std::invalid_argument);
}

TEST(Mm1k, DistributionIsGeometricTruncated) {
  const auto pi = holms::markov::mm1k_distribution(1.0, 2.0, 3);
  ASSERT_EQ(pi.size(), 4u);
  double sum = 0.0;
  for (double x : pi) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(pi[1] / pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[3] / pi[2], 0.5, 1e-12);
}

TEST(Mm1k, EqualRatesIsUniform) {
  const auto pi = holms::markov::mm1k_distribution(2.0, 2.0, 4);
  for (double x : pi) EXPECT_NEAR(x, 0.2, 1e-9);
}

TEST(Mm1k, ConvergesToMm1ForLargeK) {
  const auto finite = holms::markov::mm1k(1.0, 2.0, 200);
  const auto infinite = holms::markov::mm1(1.0, 2.0);
  EXPECT_NEAR(finite.mean_queue_length, infinite.mean_queue_length, 1e-6);
  EXPECT_NEAR(finite.blocking_probability, 0.0, 1e-12);
}

TEST(Mm1k, BlockingReducesThroughput) {
  const auto m = holms::markov::mm1k(4.0, 2.0, 2);  // heavily overloaded
  EXPECT_GT(m.blocking_probability, 0.3);
  EXPECT_NEAR(m.throughput, 4.0 * (1.0 - m.blocking_probability), 1e-12);
  EXPECT_LT(m.throughput, 2.0 + 1e-9);  // can't exceed service rate
}

TEST(Md1, LessWaitingThanMm1AtSameLoad) {
  const auto md = holms::markov::md1(1.0, 0.5);
  const auto mm = holms::markov::mm1(1.0, 2.0);
  EXPECT_LT(md.mean_queue_length, mm.mean_queue_length);
  EXPECT_NEAR(md.utilization, mm.utilization, 1e-12);
}

TEST(Md1, PollaczekKhinchineValue) {
  // rho = 0.5: L = 0.5 + 0.25/(2*0.5) = 0.75.
  const auto m = holms::markov::md1(1.0, 0.5);
  EXPECT_NEAR(m.mean_queue_length, 0.75, 1e-12);
}

TEST(BirthDeath, MatchesMm1kDistribution) {
  const double lambda = 1.3, mu = 2.0;
  const std::size_t k = 5;
  std::vector<double> birth(k + 1, lambda), death(k + 1, mu);
  const auto bd = holms::markov::birth_death_steady_state(birth, death);
  const auto ref = holms::markov::mm1k_distribution(lambda, mu, k);
  ASSERT_EQ(bd.size(), ref.size());
  for (std::size_t i = 0; i <= k; ++i) EXPECT_NEAR(bd[i], ref[i], 1e-9);
}

TEST(BirthDeath, RejectsZeroDeathRate) {
  std::vector<double> birth{1.0, 1.0}, death{1.0, 0.0};
  EXPECT_THROW(holms::markov::birth_death_steady_state(birth, death),
               std::invalid_argument);
}

// ---------- Jackson networks ----------

TEST(Jackson, TandemReducesToIndependentMm1) {
  const auto net = holms::markov::tandem_network({5.0, 4.0, 6.0}, 2.0);
  const auto sol = net.solve();
  ASSERT_TRUE(sol.stable);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sol.effective_arrival_rate[i], 2.0, 1e-9);
  }
  const auto ref0 = holms::markov::mm1(2.0, 5.0);
  EXPECT_NEAR(sol.station[0].mean_queue_length, ref0.mean_queue_length,
              1e-9);
  // Sojourn time = sum of per-station W (Little on the whole network).
  double w = 0.0;
  for (const auto& s : sol.station) w += s.mean_waiting_time;
  EXPECT_NEAR(sol.mean_sojourn_time, w, 1e-9);
}

TEST(Jackson, FeedbackLoopAmplifiesLoad) {
  // One station, external rate 1, feedback p = 0.5: lambda = 1/(1-0.5) = 2.
  holms::markov::JacksonNetwork net(
      {holms::markov::JacksonStation{5.0, 1.0}});
  net.set_routing(0, 0, 0.5);
  const auto sol = net.solve();
  ASSERT_TRUE(sol.stable);
  EXPECT_NEAR(sol.effective_arrival_rate[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.throughput, 1.0, 1e-12);
}

TEST(Jackson, SplitRouting) {
  // Station 0 splits 70/30 to stations 1 and 2.
  holms::markov::JacksonNetwork net({{10.0, 4.0}, {10.0, 0.0}, {10.0, 0.0}});
  net.set_routing(0, 1, 0.7);
  net.set_routing(0, 2, 0.3);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.effective_arrival_rate[1], 2.8, 1e-9);
  EXPECT_NEAR(sol.effective_arrival_rate[2], 1.2, 1e-9);
}

TEST(Jackson, DetectsInstability) {
  const auto net = holms::markov::tandem_network({5.0, 1.5}, 2.0);
  const auto sol = net.solve();
  EXPECT_FALSE(sol.stable);  // station 1 has rho > 1
}

TEST(Jackson, RejectsBadRouting) {
  holms::markov::JacksonNetwork net({{1.0, 1.0}, {1.0, 0.0}});
  net.set_routing(0, 0, 0.6);
  net.set_routing(0, 1, 0.6);  // row sums to 1.2
  EXPECT_THROW(net.solve(), std::invalid_argument);
  EXPECT_THROW(net.set_routing(0, 5, 0.1), std::invalid_argument);
  EXPECT_THROW(holms::markov::JacksonNetwork({}), std::invalid_argument);
}

TEST(Jackson, MatchesDecoderPipelineIntuition) {
  // The MPEG-2 chain as a queueing network: receive -> VLD -> IDCT with a
  // 20% VLD reprocess loop; the bottleneck station carries the longest
  // queue.
  holms::markov::JacksonNetwork net(
      {{100.0, 30.0},    // receive
       {45.0, 0.0},      // VLD (bottleneck with feedback)
       {80.0, 0.0}});    // IDCT
  net.set_routing(0, 1, 1.0);
  net.set_routing(1, 1, 0.2);   // reprocessing feedback
  net.set_routing(1, 2, 0.8);
  const auto sol = net.solve();
  ASSERT_TRUE(sol.stable);
  EXPECT_NEAR(sol.effective_arrival_rate[1], 30.0 / 0.8, 1e-6);
  EXPECT_GT(sol.station[1].mean_queue_length,
            sol.station[0].mean_queue_length);
  EXPECT_GT(sol.station[1].mean_queue_length,
            sol.station[2].mean_queue_length);
}

TEST(ProducerConsumer, BalancedPipelineIsSymmetric) {
  ProducerConsumerModel m;
  m.producer_rate = 2.0;
  m.consumer_rate = 2.0;
  m.buffer_capacity = 4;
  const auto r = m.analyze();
  EXPECT_NEAR(r.producer_blocked, r.consumer_idle, 1e-6);
  EXPECT_NEAR(r.mean_occupancy, 2.0, 1e-6);  // uniform over 0..4
}

TEST(ProducerConsumer, FastConsumerStarves) {
  ProducerConsumerModel m;
  m.producer_rate = 1.0;
  m.consumer_rate = 10.0;
  m.buffer_capacity = 4;
  const auto r = m.analyze();
  EXPECT_GT(r.consumer_idle, 0.8);
  EXPECT_LT(r.producer_blocked, 0.01);
  // Throughput limited by the producer.
  EXPECT_NEAR(r.throughput, 1.0, 0.01);
}

TEST(ProducerConsumer, SlowConsumerBlocksProducer) {
  ProducerConsumerModel m;
  m.producer_rate = 10.0;
  m.consumer_rate = 1.0;
  m.buffer_capacity = 4;
  const auto r = m.analyze();
  EXPECT_GT(r.producer_blocked, 0.8);
  EXPECT_NEAR(r.throughput, 1.0, 0.02);  // limited by the consumer
}

TEST(ProducerConsumer, BiggerBufferRaisesThroughput) {
  ProducerConsumerModel a, b;
  a.producer_rate = b.producer_rate = 2.0;
  a.consumer_rate = b.consumer_rate = 2.0;
  a.buffer_capacity = 1;
  b.buffer_capacity = 16;
  EXPECT_LT(a.analyze().throughput, b.analyze().throughput);
}

}  // namespace
