// Equivalence suites for the hot-path kernels: the incremental SA move
// evaluator (swap / 2-opt / cluster moves) vs full re-evaluation, the CSR
// stationary solvers vs their dense counterparts — bitwise identical across
// thread counts (PR 5) — and the slab/small-buffer event pool plus its
// cross-candidate EventPoolCache recycling.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "exec/aligned.hpp"
#include "exec/simd.hpp"
#include "exec/thread_pool.hpp"
#include "markov/chain.hpp"
#include "markov/sparse.hpp"
#include "noc/mapping.hpp"
#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace holms;

// ---------------------------------------------------------------------------
// Incremental SA move evaluation.
// ---------------------------------------------------------------------------

double full_penalized_cost(const noc::AppGraph& g, const noc::Mesh2D& mesh,
                           const noc::EnergyModel& em, const noc::Mapping& m,
                           double capacity, double penalty) {
  const noc::MappingEval ev = noc::evaluate_mapping(g, mesh, em, m, capacity);
  double c = ev.comm_energy_j;
  if (capacity > 0.0 && ev.max_link_load_bps > capacity) {
    c *= 1.0 + penalty * (ev.max_link_load_bps / capacity - 1.0);
  }
  return c;
}

// Drives >= 10k random swaps through a SwapEvaluator (random commit/revert
// mix) and checks (a) every revert restores the cost bitwise, and (b) the
// incrementally-maintained cost tracks a from-scratch evaluation to 1e-9.
void drive_and_compare(const noc::AppGraph& g, const noc::Mesh2D& mesh,
                       double capacity, std::uint64_t seed) {
  const noc::EnergyModel em;
  const double penalty = 2.0;
  sim::Rng rng(seed);
  noc::Mapping m0 = noc::greedy_mapping(g, mesh, em);
  noc::SwapEvaluator ev(g, mesh, em, m0, capacity, penalty);

  ASSERT_DOUBLE_EQ(ev.cost(),
                   full_penalized_cost(g, mesh, em, m0, capacity, penalty));

  const auto tiles = static_cast<std::int64_t>(mesh.num_tiles());
  constexpr std::size_t kMoves = 12000;
  for (std::size_t i = 0; i < kMoves; ++i) {
    const auto a = static_cast<noc::TileId>(rng.uniform_int(0, tiles - 1));
    const auto b = static_cast<noc::TileId>(rng.uniform_int(0, tiles - 1));
    if (a == b) continue;
    const double before = ev.cost();
    const double after = ev.apply_swap(a, b);
    if (rng.bernoulli(0.5)) {
      ev.commit_swap();
      (void)after;
    } else {
      ev.revert_swap();
      // Rejected moves must leave zero floating-point residue.
      ASSERT_EQ(ev.cost(), before) << "revert not bitwise at move " << i;
    }
    if (i % 500 == 0) {
      const double full = full_penalized_cost(g, mesh, em, ev.mapping(),
                                              capacity, penalty);
      ASSERT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)))
          << "incremental cost drifted at move " << i;
    }
  }
  // Final check after the full sequence.
  const double full =
      full_penalized_cost(g, mesh, em, ev.mapping(), capacity, penalty);
  EXPECT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)));
}

TEST(SwapEvaluator, TracksFullCostMmsGraph) {
  drive_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 0.0, 11);
  drive_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 2e9, 12);
}

TEST(SwapEvaluator, TracksFullCostSurveillanceGraph) {
  const auto g = noc::video_surveillance_graph();
  const noc::Mesh2D mesh(4, 4);
  drive_and_compare(g, mesh, 0.0, 21);
  drive_and_compare(g, mesh, 1e9, 22);
}

TEST(SwapEvaluator, TracksFullCostRandomGraphRectangularMesh) {
  sim::Rng grng(33);
  const auto g = noc::random_graph(12, grng, 1e6);
  // Non-square mesh with empty tiles: exercises core<->empty swaps and any
  // x/y confusion in the route table.
  const noc::Mesh2D mesh(5, 3);
  drive_and_compare(g, mesh, 0.0, 31);
  drive_and_compare(g, mesh, 5e5, 32);
}

TEST(XyRouteTable, MatchesMeshRoutes) {
  for (const auto& dims : {std::pair<std::size_t, std::size_t>{4, 4},
                           std::pair<std::size_t, std::size_t>{5, 3}}) {
    const noc::Mesh2D mesh(dims.first, dims.second);
    const noc::XyRouteTable table(mesh);
    for (noc::TileId s = 0; s < mesh.num_tiles(); ++s) {
      for (noc::TileId d = 0; d < mesh.num_tiles(); ++d) {
        ASSERT_EQ(table.hops(s, d), mesh.hops(s, d));
        const auto route = mesh.xy_route(s, d);
        const auto links = table.links(s, d);
        ASSERT_EQ(links.size(), route.size() - 1);
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
          const noc::Dir dir = mesh.xy_next(route[i], d);
          ASSERT_EQ(links[i], mesh.link_index(route[i], dir));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SA move-set: swap / 2-opt segment reversal / cluster relocation (PR 5).
// ---------------------------------------------------------------------------

// Drives sampled moves of every kind through apply_move with a random
// commit/revert mix: reverts must restore the cost bitwise, and the
// incremental cost must track full re-evaluation to 1e-9.
void drive_moves_and_compare(const noc::AppGraph& g, const noc::Mesh2D& mesh,
                             double capacity, std::uint64_t seed) {
  const noc::EnergyModel em;
  const double penalty = 2.0;
  sim::Rng rng(seed);
  noc::SaOptions mix;
  mix.w_swap = 0.5;
  mix.w_segment_reversal = 0.3;
  mix.w_cluster_relocate = 0.2;
  noc::Mapping m0 = noc::greedy_mapping(g, mesh, em);
  noc::SwapEvaluator ev(g, mesh, em, m0, capacity, penalty);
  const std::size_t cores = ev.mapping().size();

  bool saw[3] = {false, false, false};
  constexpr std::size_t kMoves = 5000;
  for (std::size_t i = 0; i < kMoves; ++i) {
    const noc::MoveDesc mv =
        noc::sample_move(rng, mix, mesh.num_tiles(), cores);
    if (mv.kind != noc::SaMove::kClusterRelocate && mv.a == mv.b) continue;
    saw[static_cast<std::size_t>(mv.kind)] = true;
    const double before = ev.cost();
    ev.apply_move(mv);
    if (rng.bernoulli(0.5)) {
      ev.commit_move();
    } else {
      ev.revert_move();
      ASSERT_EQ(ev.cost(), before) << "revert not bitwise at move " << i;
    }
    if (i % 250 == 0) {
      // The mapping must stay an injective placement through every move.
      noc::Mapping sorted = ev.mapping();
      std::sort(sorted.begin(), sorted.end());
      ASSERT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << "mapping lost injectivity at move " << i;
      const double full = full_penalized_cost(g, mesh, em, ev.mapping(),
                                              capacity, penalty);
      ASSERT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)))
          << "incremental cost drifted at move " << i;
    }
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);  // every kind exercised
  const double full =
      full_penalized_cost(g, mesh, em, ev.mapping(), capacity, penalty);
  EXPECT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)));
}

TEST(SaMoves, AllKindsTrackFullCostAndRevertBitwise) {
  drive_moves_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 0.0, 41);
  drive_moves_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 2e9, 42);
}

TEST(SaMoves, AllKindsTrackFullCostOnRectangularMeshWithEmptyTiles) {
  sim::Rng grng(33);
  const auto g = noc::random_graph(12, grng, 1e6);
  drive_moves_and_compare(g, noc::Mesh2D(5, 3), 0.0, 51);
  drive_moves_and_compare(g, noc::Mesh2D(5, 3), 5e5, 52);
}

TEST(SaMoves, SwapOnlyMixPreservesLegacyDrawSequence) {
  // The default (swap-only) mix must consume exactly the legacy RNG stream:
  // one T^2 pair draw per move, no selector draw.
  const noc::SaOptions def;
  const std::size_t tiles = 16;
  sim::Rng a(123), b(123);
  for (int i = 0; i < 200; ++i) {
    const noc::MoveDesc mv = noc::sample_move(a, def, tiles, 9);
    EXPECT_EQ(mv.kind, noc::SaMove::kSwap);
    const auto pair = static_cast<std::size_t>(
        b.uniform_int(0, static_cast<std::int64_t>(tiles * tiles) - 1));
    EXPECT_EQ(mv.a, static_cast<noc::TileId>(pair / tiles));
    EXPECT_EQ(mv.b, static_cast<noc::TileId>(pair % tiles));
  }
  EXPECT_EQ(a.bits(), b.bits());  // identical draw counts
}

TEST(SaMoves, MixedMoveSaMatchesDebugFullEvalQuality) {
  const auto g = noc::mms_graph();
  const noc::Mesh2D mesh(4, 4);
  const noc::EnergyModel em;
  noc::SaOptions opts;
  opts.iterations = 4000;
  opts.w_swap = 0.6;
  opts.w_segment_reversal = 0.2;
  opts.w_cluster_relocate = 0.2;
  opts.reheat_after = 1500;
  opts.debug_full_eval = false;
  sim::Rng r1(7);
  const auto inc = noc::sa_mapping(g, mesh, em, r1, opts);
  opts.debug_full_eval = true;
  sim::Rng r2(7);
  const auto full = noc::sa_mapping(g, mesh, em, r2, opts);
  const double ci = noc::evaluate_mapping(g, mesh, em, inc).comm_energy_j;
  const double cf = noc::evaluate_mapping(g, mesh, em, full).comm_energy_j;
  // Both paths consume the shared sample_move stream; trajectories agree
  // except where an accept flips inside the ~1e-12 incremental/full gap.
  EXPECT_NEAR(ci, cf, 0.05 * cf);
}

TEST(SaMoves, ReheatingKeepsMappingValidAndCompetitive) {
  const auto g = noc::mms_graph();
  const noc::Mesh2D mesh(4, 4);
  const noc::EnergyModel em;
  noc::SaOptions opts;
  opts.iterations = 6000;
  opts.reheat_after = 400;
  opts.reheat_factor = 16.0;
  sim::Rng rng(13);
  const auto m = noc::sa_mapping(g, mesh, em, rng, opts);
  noc::Mapping sorted = m;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  const double sa = noc::evaluate_mapping(g, mesh, em, m).comm_energy_j;
  const double greedy =
      noc::evaluate_mapping(g, mesh, em, noc::greedy_mapping(g, mesh, em))
          .comm_energy_j;
  EXPECT_LE(sa, greedy * 1.05);  // reheating must not wreck the anneal
}

TEST(SaMoves, ValidateRejectsBadMoveOptions) {
  noc::SaOptions o;
  o.w_swap = -1.0;
  EXPECT_THROW(o.validate(), holms::InvalidArgument);
  o = noc::SaOptions{};
  o.w_swap = 0.0;  // zero-sum mix
  EXPECT_THROW(o.validate(), holms::InvalidArgument);
  o = noc::SaOptions{};
  o.reheat_factor = 0.5;
  EXPECT_THROW(o.validate(), holms::InvalidArgument);
  o = noc::SaOptions{};
  o.w_swap = 0.0;
  o.w_cluster_relocate = 1.0;  // non-swap-only mixes are legal
  EXPECT_NO_THROW(o.validate());
}

TEST(SaMapping, DebugFullEvalReachesSameQuality) {
  const auto g = noc::mms_graph();
  const noc::Mesh2D mesh(4, 4);
  const noc::EnergyModel em;
  noc::SaOptions opts;
  opts.iterations = 4000;
  opts.debug_full_eval = false;
  sim::Rng r1(7);
  const auto inc = noc::sa_mapping(g, mesh, em, r1, opts);
  opts.debug_full_eval = true;
  sim::Rng r2(7);
  const auto full = noc::sa_mapping(g, mesh, em, r2, opts);
  const double ci = noc::evaluate_mapping(g, mesh, em, inc).comm_energy_j;
  const double cf = noc::evaluate_mapping(g, mesh, em, full).comm_energy_j;
  // Same seed, same RNG draw sequence: the two modes walk the same move
  // trajectory except where an accept decision flips inside the ~1e-12
  // incremental/full gap.  Quality must be indistinguishable.
  EXPECT_NEAR(ci, cf, 0.02 * cf);
}

// ---------------------------------------------------------------------------
// Sparse stationary solvers.
// ---------------------------------------------------------------------------

markov::Dtmc birth_death_chain(std::size_t n) {
  markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 0.2;
    if (i + 1 < n) d.set(i, i + 1, 0.5); else stay += 0.5;
    if (i > 0) d.set(i, i - 1, 0.3); else stay += 0.3;
    d.set(i, i, stay);
  }
  return d;
}

TEST(SparseSolve, MatchesDenseBitwise) {
  const markov::Dtmc d = birth_death_chain(128);
  for (const auto method : {markov::SteadyStateMethod::kPowerIteration,
                            markov::SteadyStateMethod::kGaussSeidel}) {
    markov::SolveOptions dense;
    dense.method = method;
    dense.sparsity = markov::SparsityMode::kDense;
    markov::SolveOptions sparse = dense;
    sparse.sparsity = markov::SparsityMode::kSparse;
    const auto rd = d.steady_state(dense);
    const auto rs = d.steady_state(sparse);
    ASSERT_TRUE(rd.converged);
    ASSERT_TRUE(rs.converged);
    EXPECT_FALSE(rd.used_sparse);
    EXPECT_TRUE(rs.used_sparse);
    // Identical iterate sequence => identical iteration count, and the
    // distributions agree far below the 1e-10 requirement (bitwise).
    EXPECT_EQ(rd.iterations, rs.iterations);
    ASSERT_EQ(rd.distribution.size(), rs.distribution.size());
    for (std::size_t i = 0; i < rd.distribution.size(); ++i) {
      EXPECT_NEAR(rd.distribution[i], rs.distribution[i], 1e-10);
      EXPECT_EQ(rd.distribution[i], rs.distribution[i]) << "state " << i;
    }
  }
}

TEST(SparseSolve, CtmcRoutesThroughSparseAutomatically) {
  const std::size_t n = 96;
  markov::Ctmc q(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q.set_rate(i, i + 1, 3.0);
    q.set_rate(i + 1, i, 4.0);
  }
  markov::SolveOptions opts;  // kAuto
  const auto r = q.steady_state(opts);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.used_sparse);  // n >= 64 and tridiagonal density << 0.25
  // Verify against the direct dense solve.
  markov::SolveOptions lu;
  lu.method = markov::SteadyStateMethod::kDirectLU;
  const auto exact = q.steady_state(lu);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.distribution[i], exact.distribution[i], 1e-8);
  }
}

TEST(SparseSolve, AutoStaysDenseWhenSmallOrDense) {
  // Small chain: below sparse_min_states.
  const auto small = birth_death_chain(16).steady_state({});
  EXPECT_FALSE(small.used_sparse);
  // Large but dense chain: uniform transitions have density 1.
  const std::size_t n = 96;
  markov::Dtmc dense(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      dense.set(r, c, 1.0 / static_cast<double>(n));
  const auto rd = dense.steady_state({});
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rd.converged);
}

// ---------------------------------------------------------------------------
// Thread-count invariance (PR 5): the sharded solvers and explore() must be
// a function of the problem alone, never of the worker count.
// ---------------------------------------------------------------------------

// Banded chain: each state talks to its `band` neighbors on each side, so
// nnz ~ n * (2*band + 1) — big and sparse enough to clear the sharding
// floors without being trivial.  Forward drift (0.3 up vs 0.2 down) keeps
// the spectral gap bounded away from 1 so the iterative solvers converge.
markov::Dtmc banded_chain(std::size_t n, std::size_t band) {
  markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n - 1, i + band);
    double off = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) {
      if (j == i) continue;
      const double side = j > i ? 0.3 : 0.2;
      const std::size_t count = j > i ? hi - i : i - lo;
      const double w = side / static_cast<double>(count);
      d.set(i, j, w);
      off += w;
    }
    d.set(i, i, 1.0 - off);
  }
  return d;
}

TEST(ThreadInvariance, SparseSolvesBitwiseAcrossThreadCounts) {
  const std::size_t n = 1500;
  const markov::Dtmc d = banded_chain(n, 4);
  for (const auto method : {markov::SteadyStateMethod::kPowerIteration,
                            markov::SteadyStateMethod::kGaussSeidel}) {
    markov::SolveOptions opts;
    opts.method = method;
    opts.sparsity = markov::SparsityMode::kSparse;
    opts.parallel_min_states = 256;
    opts.parallel_min_nnz = 1024;
    opts.max_iterations = 3000;

    opts.threads = 1;
    const auto base = d.steady_state(opts);
    ASSERT_TRUE(base.used_sparse);
    // env_threads folds the CI HOLMS_THREADS matrix into the sweep, so the
    // two ctest runs exercise different pool sizes against the same oracle.
    for (const std::size_t t :
         {std::size_t{2}, std::size_t{4}, std::size_t{7},
          holms::exec::env_threads(2)}) {
      opts.threads = t;
      const auto r = d.steady_state(opts);
      EXPECT_EQ(base.iterations, r.iterations);
      EXPECT_EQ(base.converged, r.converged);
      ASSERT_EQ(base.distribution.size(), r.distribution.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(base.distribution[i], r.distribution[i])
            << "threads=" << t << " state " << i;
      }
    }
    // A caller-owned shared pool must give the same bits as owned workers.
    holms::exec::ThreadPool pool(3);
    opts.pool = &pool;
    const auto rp = d.steady_state(opts);
    EXPECT_EQ(base.iterations, rp.iterations);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(base.distribution[i], rp.distribution[i]) << "state " << i;
    }
  }
}

TEST(ThreadInvariance, ShardedPowerIterationMatchesSerialScatterBitwise) {
  // The gather-form sharded kernel reproduces the serial scatter per-column
  // accumulation order exactly — engaging the shards must not change a bit.
  const markov::Dtmc d = banded_chain(1500, 4);
  markov::SolveOptions serial;
  serial.sparsity = markov::SparsityMode::kSparse;
  serial.max_iterations = 2000;
  serial.parallel_min_states = static_cast<std::size_t>(1) << 30;  // off
  markov::SolveOptions sharded = serial;
  sharded.parallel_min_states = 256;
  sharded.parallel_min_nnz = 1024;
  sharded.threads = 4;
  const auto a = d.steady_state(serial);
  const auto b = d.steady_state(sharded);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.distribution.size(), b.distribution.size());
  for (std::size_t i = 0; i < a.distribution.size(); ++i) {
    ASSERT_EQ(a.distribution[i], b.distribution[i]) << "state " << i;
  }
}

TEST(ThreadInvariance, HybridGaussSeidelConvergesToSerialFixpoint) {
  // The block-hybrid GS takes a different (but deterministic) iterate path
  // than serial GS; both must land on the same stationary distribution.
  const markov::Dtmc d = banded_chain(1500, 4);
  markov::SolveOptions serial;
  serial.method = markov::SteadyStateMethod::kGaussSeidel;
  serial.sparsity = markov::SparsityMode::kSparse;
  serial.parallel_min_states = static_cast<std::size_t>(1) << 30;  // off
  markov::SolveOptions hybrid = serial;
  hybrid.parallel_min_states = 256;
  hybrid.parallel_min_nnz = 1024;
  hybrid.threads = 4;
  const auto a = d.steady_state(serial);
  const auto b = d.steady_state(hybrid);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t i = 0; i < a.distribution.size(); ++i) {
    EXPECT_NEAR(a.distribution[i], b.distribution[i], 1e-8) << "state " << i;
  }
}

TEST(ThreadInvariance, ExploreBitwiseAcrossThreadCounts) {
  core::Application app;
  sim::Rng grng(3);
  app.graph = noc::random_graph(12, grng, 5e5);
  app.qos.period_s = 0.05;
  const core::Platform plat = core::Platform::homogeneous(4, 4);
  core::ExploreOptions opts;
  opts.restarts = 2;
  opts.sa.iterations = 1200;

  opts.threads = 1;
  sim::Rng r1(5);
  const core::ExploreResult base = core::explore(app, plat, r1, opts);
  ASSERT_TRUE(base.found_feasible);
  ASSERT_GT(base.evaluated, 0u);
  for (const std::size_t t :
       {std::size_t{2}, std::size_t{4}, std::size_t{7},
        holms::exec::env_threads(2)}) {
    opts.threads = t;
    sim::Rng rt(5);
    const core::ExploreResult r = core::explore(app, plat, rt, opts);
    EXPECT_EQ(base.found_feasible, r.found_feasible);
    EXPECT_EQ(base.evaluated, r.evaluated);
    EXPECT_EQ(base.best.mapping, r.best.mapping) << "threads=" << t;
    EXPECT_EQ(base.best.eval.total_energy_j, r.best.eval.total_energy_j);
    EXPECT_EQ(base.best.eval.schedule.makespan_s,
              r.best.eval.schedule.makespan_s);
  }
}

TEST(CsrMatrix, TransposeRoundTrip) {
  markov::Matrix a(3, 4);
  a.at(0, 1) = 2.0;
  a.at(1, 0) = -1.5;
  a.at(1, 3) = 4.0;
  a.at(2, 2) = 7.0;
  const auto csr = markov::CsrMatrix::from_dense(a);
  EXPECT_EQ(csr.nnz(), 4u);
  EXPECT_NEAR(csr.density(), 4.0 / 12.0, 1e-15);
  const auto t = csr.transposed();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 3u);
  const auto tt = t.transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    const auto cols = tt.row_cols(r);
    const auto vals = tt.row_vals(r);
    std::size_t k = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      if (a.at(r, c) == 0.0) continue;
      ASSERT_LT(k, cols.size());
      EXPECT_EQ(cols[k], c);
      EXPECT_EQ(vals[k], a.at(r, c));
      ++k;
    }
    EXPECT_EQ(k, cols.size());
  }
}

// ---------------------------------------------------------------------------
// Event-pool simulator kernel.
// ---------------------------------------------------------------------------

TEST(EventPool, DeterministicTraceWithBatchesAndCancels) {
  sim::Simulator s;
  std::vector<std::pair<double, int>> trace;
  const auto mark = [&](int tag) { trace.emplace_back(s.now(), tag); };

  s.schedule_at(2.0, [&] { mark(1); });
  const auto victim = s.schedule_at(2.0, [&] { mark(99); });
  s.schedule_at(2.0, [&] { mark(2); });
  s.schedule_at(1.0, [&] {
    mark(0);
    s.cancel(victim);                      // cancels into the future batch
    s.schedule_at(2.0, [&] { mark(3); });  // joins the t=2 cohort (later seq)
    s.schedule_in(0.0, [&] { mark(4); });  // same-timestamp follow-up at t=1
  });
  const std::size_t n = s.run();
  EXPECT_EQ(n, 5u);
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 0}, {1.0, 4}, {2.0, 1}, {2.0, 2}, {2.0, 3}};
  EXPECT_EQ(trace, expected);
}

TEST(EventPool, CancelWithinSameTimestampBatch) {
  sim::Simulator s;
  int ran = 0;
  sim::EventId later{};
  s.schedule_at(1.0, [&] {
    ++ran;
    s.cancel(later);  // target was scheduled at the same timestamp
  });
  later = s.schedule_at(1.0, [&] { ran += 100; });
  s.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(EventPool, StopMidBatchLeavesTailPending) {
  sim::Simulator s;
  std::vector<int> ran;
  s.schedule_at(1.0, [&] { ran.push_back(1); });
  s.schedule_at(1.0, [&] {
    ran.push_back(2);
    s.stop();
  });
  s.schedule_at(1.0, [&] { ran.push_back(3); });
  const std::size_t first = s.run();
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(s.pending(), 1u);
  // Resume: the re-queued tail runs, still at t=1, in original order.
  const std::size_t second = s.run();
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 1.0);
}

TEST(EventPool, LargeCapturesFallBackToHeap) {
  sim::Simulator s;
  std::array<double, 32> payload{};  // 256 bytes: well past the inline buffer
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<double>(i) * 0.5;
  }
  double sum = 0.0;
  s.schedule_at(1.0, [payload, &sum] {
    for (const double v : payload) sum += v;
  });
  s.run();
  EXPECT_NEAR(sum, 0.5 * (31.0 * 32.0 / 2.0), 1e-12);
}

TEST(EventPool, DestructorReleasesUnrunCallbacks) {
  const auto token = std::make_shared<int>(42);
  {
    sim::Simulator s;
    s.schedule_at(1.0, [token] { (void)*token; });         // inline capture
    std::array<std::shared_ptr<int>, 16> many;
    many.fill(token);
    s.schedule_at(2.0, [many] { (void)many; });            // heap fallback
    const auto cancelled = s.schedule_at(3.0, [token] { (void)*token; });
    s.cancel(cancelled);
    EXPECT_GT(token.use_count(), 1);
  }
  // All three never ran; their captures must still have been destroyed.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventPool, SlotsAreRecycledAcrossManyEvents) {
  sim::Simulator s;
  std::size_t count = 0;
  struct Chain {
    sim::Simulator& sim;
    std::size_t& count;
    std::size_t remaining;
    void operator()() const {
      ++count;
      if (remaining > 0) sim.schedule_in(1.0, Chain{sim, count, remaining - 1});
    }
  };
  s.schedule_in(1.0, Chain{s, count, 9999});
  s.run();
  EXPECT_EQ(count, 10000u);
  EXPECT_EQ(s.executed(), 10000u);
  // One live event at a time: the pool never needs more than one slab.
  EXPECT_EQ(s.queue_high_water(), 1u);
}

// ---------------------------------------------------------------------------
// EventPoolCache: slab-arena recycling across simulator fleets (PR 5).
// ---------------------------------------------------------------------------

TEST(EventPoolCache, RecyclesSlabsAcrossSimulators) {
  sim::EventPoolCache cache;
  EXPECT_EQ(cache.slabs_cached(), 0u);
  {
    sim::Simulator s(&cache);
    int n = 0;
    // 600 concurrent live events: forces >= 3 slabs of 256 slots.
    for (int i = 0; i < 600; ++i) {
      s.schedule_at(1.0 + i, [&n] { ++n; });
    }
    s.run();
    EXPECT_EQ(n, 600);
  }
  const std::size_t parked = cache.slabs_cached();
  EXPECT_GE(parked, 3u);
  EXPECT_EQ(cache.high_water(), parked);
  {
    sim::Simulator s2(&cache);
    // The second simulator adopts the parked arena wholesale.
    EXPECT_EQ(cache.slabs_cached(), 0u);
    int n = 0;
    for (int i = 0; i < 600; ++i) {
      s2.schedule_at(1.0 + i, [&n] { ++n; });
    }
    s2.run();
    EXPECT_EQ(n, 600);
  }
  // Same workload, recycled slots: the arena comes back unchanged.
  EXPECT_EQ(cache.slabs_cached(), parked);
  EXPECT_EQ(cache.high_water(), parked);
}

TEST(EventPoolCache, KeepsLargestArena) {
  sim::EventPoolCache cache;
  {
    sim::Simulator big(&cache);
    int n = 0;
    for (int i = 0; i < 600; ++i) big.schedule_at(1.0 + i, [&n] { ++n; });
    big.run();
  }
  const std::size_t parked = cache.slabs_cached();
  ASSERT_GE(parked, 3u);
  {
    // A small run adopts the big arena and returns it intact: parking the
    // larger-of arenas means the cache never shrinks below its high water.
    sim::Simulator small(&cache);
    int n = 0;
    small.schedule_at(1.0, [&n] { ++n; });
    small.run();
  }
  EXPECT_EQ(cache.slabs_cached(), parked);
  EXPECT_EQ(cache.high_water(), parked);
}

std::vector<std::pair<double, int>> batch_cancel_trace(sim::Simulator& s) {
  std::vector<std::pair<double, int>> trace;
  const auto mark = [&](int tag) { trace.emplace_back(s.now(), tag); };
  s.schedule_at(2.0, [&] { mark(1); });
  const auto victim = s.schedule_at(2.0, [&] { mark(99); });
  s.schedule_at(2.0, [&] { mark(2); });
  s.schedule_at(1.0, [&] {
    mark(0);
    s.cancel(victim);
    s.schedule_at(2.0, [&] { mark(3); });
    s.schedule_in(0.0, [&] { mark(4); });
  });
  s.run();
  return trace;
}

TEST(EventPoolCache, RecycledArenaProducesIdenticalTrace) {
  sim::EventPoolCache cache;
  std::vector<std::pair<double, int>> fresh, recycled;
  {
    sim::Simulator s(&cache);
    fresh = batch_cancel_trace(s);
  }
  {
    sim::Simulator s(&cache);  // runs entirely on recycled slots
    recycled = batch_cancel_trace(s);
  }
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 0}, {1.0, 4}, {2.0, 1}, {2.0, 2}, {2.0, 3}};
  EXPECT_EQ(fresh, expected);
  EXPECT_EQ(recycled, expected);
}

TEST(EventPoolCache, ThisThreadReturnsPerThreadSingleton) {
  sim::EventPoolCache& a = sim::EventPoolCache::this_thread();
  sim::EventPoolCache& b = sim::EventPoolCache::this_thread();
  EXPECT_EQ(&a, &b);
}

// ---- exec::simd: scalar-vs-native bitwise equivalence ----------------------
//
// The lane model's contract (DESIGN.md §5i): every kernel produces the SAME
// BITS on every ISA because all backends emulate the identical 8-lane
// assignment and the identical reduction tree.  Under HOLMS_SIMD=off the
// native table below aliases the scalar one and these tests compare it to
// itself — still meaningful as a determinism smoke, and the CI matrix runs
// both settings.

namespace simd = holms::exec::simd;

TEST(Simd, ElementwiseAndReductionKernelsBitwiseIdentical) {
  const simd::Kernels& s = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& v = simd::kernels_for(simd::best_isa());
  sim::Rng rng(42);
  // Sizes straddle the 8-lane boundary: every tail length, plus bulk.
  for (std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{333},
        std::size_t{4096}}) {
    std::vector<double> a(n), b(n);
    for (double& x : a) x = rng.uniform(-2.0, 2.0);
    for (double& x : b) x = rng.uniform(-2.0, 2.0);
    EXPECT_EQ(s.sum(a.data(), n), v.sum(a.data(), n)) << "sum n=" << n;
    EXPECT_EQ(s.sum_abs_diff(a.data(), b.data(), n),
              v.sum_abs_diff(a.data(), b.data(), n))
        << "sum_abs_diff n=" << n;
    std::vector<double> c = a, d = a;
    s.div_all(c.data(), n, 3.7);
    v.div_all(d.data(), n, 3.7);
    EXPECT_EQ(c, d) << "div_all n=" << n;
  }
}

// Random CSR with strictly-ascending sources per column (the transposed()
// invariant the run-detection fast load relies on), mixing contiguous runs
// with scattered entries.
struct TestCsr {
  std::vector<std::size_t> offsets{0};
  std::vector<std::uint32_t> srcs;
  std::vector<double> vals;
};

TestCsr random_csr(sim::Rng& rng, std::size_t ncols) {
  TestCsr m;
  for (std::size_t c = 0; c < ncols; ++c) {
    if (ncols > 20 && rng.uniform_int(0, 2) == 0) {
      const auto start =
          static_cast<std::uint32_t>(rng.uniform_int(0, ncols - 17));
      for (std::uint32_t k = 0; k < 16; ++k) {
        m.srcs.push_back(start + k);
        m.vals.push_back(rng.uniform());
      }
    } else {
      std::vector<std::uint32_t> pick;
      const std::size_t deg = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(
                                 std::min<std::size_t>(ncols, 24)) - 1));
      for (std::size_t k = 0; k < deg; ++k) {
        pick.push_back(static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ncols) - 1)));
      }
      std::sort(pick.begin(), pick.end());
      pick.erase(std::unique(pick.begin(), pick.end()), pick.end());
      for (const std::uint32_t p : pick) {
        m.srcs.push_back(p);
        m.vals.push_back(rng.uniform());
      }
    }
    m.offsets.push_back(m.srcs.size());
  }
  return m;
}

TEST(Simd, SpmvAndGaussSeidelKernelsBitwiseIdentical) {
  const simd::Kernels& s = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& v = simd::kernels_for(simd::best_isa());
  sim::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 199));
    const TestCsr m = random_csr(rng, n);
    std::vector<double> x(n), pi(n), diag(n);
    for (double& e : x) e = rng.uniform();
    for (double& e : pi) e = rng.uniform();
    for (double& e : diag) e = rng.uniform(0.0, 0.9);

    std::vector<double> o1(n), o2(n), o3(n);
    s.spmv_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), x.data(),
                o1.data(), 0, n);
    v.spmv_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), x.data(),
                o2.data(), 0, n);
    EXPECT_EQ(o1, o2) << "spmv trial " << trial;
    // Column sharding is a pure work split: any cut reproduces full-range.
    const std::size_t mid = n / 2;
    v.spmv_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), x.data(),
                o3.data(), 0, mid);
    v.spmv_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), x.data(),
                o3.data(), mid, n);
    EXPECT_EQ(o1, o3) << "sharded spmv trial " << trial;

    std::vector<double> g1 = pi, g2 = pi;
    s.gs_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), diag.data(),
              pi.data(), g1.data(), 0, n);
    v.gs_cols(m.offsets.data(), m.srcs.data(), m.vals.data(), diag.data(),
              pi.data(), g2.data(), 0, n);
    EXPECT_EQ(g1, g2) << "gs trial " << trial;
  }
}

TEST(Simd, TransferDeltaKernelBitwiseIdentical) {
  const simd::Kernels& s = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& v = simd::kernels_for(simd::best_isa());
  sim::Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 40));
    std::vector<double> vol(n), oh(n), nh(n);
    for (double& e : vol) e = rng.uniform(0.0, 1e6);
    for (double& e : oh) e = static_cast<double>(rng.uniform_int(0, 13));
    for (double& e : nh) e = static_cast<double>(rng.uniform_int(0, 13));
    EXPECT_EQ(
        s.transfer_delta(vol.data(), oh.data(), nh.data(), n, 0.98, 1.74),
        v.transfer_delta(vol.data(), oh.data(), nh.data(), n, 0.98, 1.74))
        << "trial " << trial;
  }
}

TEST(Simd, FgsSlotKernelBitwiseIdenticalAcrossPolicies) {
  const simd::Kernels& s = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& v = simd::kernels_for(simd::best_isa());
  sim::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 36));
    auto mk = [&](double lo, double hi) {
      std::vector<double> r(n);
      for (double& e : r) e = rng.uniform(lo, hi);
      return r;
    };
    auto cap = mk(1e5, 8e6), loss = mk(0.0, 0.6), fr = mk(1e8, 1e9);
    auto pw = mk(0.3, 2.0), ms = mk(1e6, 6e6), bl = mk(2e5, 1e6);
    auto sl = mk(0.01, 0.1), dc = mk(0.5, 3.0), nj = mk(1.0, 20.0);
    auto g = mk(0.5, 3.0), th = mk(0.3, 0.7), fc = mk(0.1, 0.8);
    auto me = mk(1e5, 4e6), ew = mk(0.0, 0.9);
    std::vector<double> pg(n), pf(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t p = rng.uniform_int(0, 2);  // all three policies
      pg[i] = p == 0 ? 1.0 : 0.0;
      pf[i] = p == 1 ? 1.0 : 0.0;
    }
    std::array<std::vector<double>, 8> out_s, out_v;
    for (auto& o : out_s) o.assign(n, 0.0);
    for (auto& o : out_v) o.assign(n, 0.0);
    auto bind = [&](std::array<std::vector<double>, 8>& o) {
      simd::FgsSlotBatch t{};
      t.n = n;
      t.capacity_bps = cap.data();
      t.loss = loss.data();
      t.policy_graceful = pg.data();
      t.policy_feedback = pf.data();
      t.freq_hz = fr.data();
      t.total_power_w = pw.data();
      t.max_stream_bps = ms.data();
      t.base_layer_bps = bl.data();
      t.slot_s = sl.data();
      t.decode_cycles_per_bit = dc.data();
      t.rx_nj_per_bit = nj.data();
      t.loss_shed_gain = g.data();
      t.base_only_loss_threshold = th.data();
      t.base_fec_cap = fc.data();
      t.max_enhancement_bps = me.data();
      t.loss_ewma = ew.data();
      t.shed = o[0].data();
      t.rx_bits = o[1].data();
      t.decodable_bits = o[2].data();
      t.rx_energy_j = o[3].data();
      t.cpu_decode_energy_j = o[4].data();
      t.cpu_idle_energy_j = o[5].data();
      t.load_norm = o[6].data();
      t.decoded_bps = o[7].data();
      return t;
    };
    const simd::FgsSlotBatch ts = bind(out_s);
    s.fgs_slots(ts);
    const simd::FgsSlotBatch tv = bind(out_v);
    v.fgs_slots(tv);
    for (std::size_t f = 0; f < out_s.size(); ++f) {
      EXPECT_EQ(out_s[f], out_v[f]) << "field " << f << " trial " << trial;
    }
  }
}

TEST(Simd, DispatchExposesScalarFallbackAndNames) {
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  const simd::Kernels& k = simd::kernels();  // resolves HOLMS_SIMD once
  EXPECT_NE(k.name, nullptr);
  // kernels_for never fails: unavailable ISAs fall back to scalar.
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    const simd::Kernels& t = simd::kernels_for(isa);
    EXPECT_NE(t.sum, nullptr);
    if (!simd::isa_available(isa)) {
      EXPECT_EQ(t.isa, simd::Isa::kScalar);
    }
  }
}

TEST(Simd, AlignedHelpersReturnCacheLineAlignedStorage) {
  holms::exec::aligned_vector<double> v(100, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                holms::exec::kCacheLineBytes,
            0u);
  auto arr = holms::exec::make_aligned_array<double>(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr.get()) %
                holms::exec::kCacheLineBytes,
            0u);
  for (std::size_t i = 0; i < 37; ++i) {
    EXPECT_EQ(arr[i], 0.0);  // value-initialized
  }
}

}  // namespace
