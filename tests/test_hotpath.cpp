// Equivalence suites for the PR-2 hot-path kernels: the incremental SA move
// evaluator vs full re-evaluation, the CSR stationary solvers vs their dense
// counterparts, and the slab/small-buffer event pool vs the documented kernel
// semantics (ordering, cancellation, batching, lifetimes).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "markov/chain.hpp"
#include "markov/sparse.hpp"
#include "noc/mapping.hpp"
#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace holms;

// ---------------------------------------------------------------------------
// Incremental SA move evaluation.
// ---------------------------------------------------------------------------

double full_penalized_cost(const noc::AppGraph& g, const noc::Mesh2D& mesh,
                           const noc::EnergyModel& em, const noc::Mapping& m,
                           double capacity, double penalty) {
  const noc::MappingEval ev = noc::evaluate_mapping(g, mesh, em, m, capacity);
  double c = ev.comm_energy_j;
  if (capacity > 0.0 && ev.max_link_load_bps > capacity) {
    c *= 1.0 + penalty * (ev.max_link_load_bps / capacity - 1.0);
  }
  return c;
}

// Drives >= 10k random swaps through a SwapEvaluator (random commit/revert
// mix) and checks (a) every revert restores the cost bitwise, and (b) the
// incrementally-maintained cost tracks a from-scratch evaluation to 1e-9.
void drive_and_compare(const noc::AppGraph& g, const noc::Mesh2D& mesh,
                       double capacity, std::uint64_t seed) {
  const noc::EnergyModel em;
  const double penalty = 2.0;
  sim::Rng rng(seed);
  noc::Mapping m0 = noc::greedy_mapping(g, mesh, em);
  noc::SwapEvaluator ev(g, mesh, em, m0, capacity, penalty);

  ASSERT_DOUBLE_EQ(ev.cost(),
                   full_penalized_cost(g, mesh, em, m0, capacity, penalty));

  const auto tiles = static_cast<std::int64_t>(mesh.num_tiles());
  constexpr std::size_t kMoves = 12000;
  for (std::size_t i = 0; i < kMoves; ++i) {
    const auto a = static_cast<noc::TileId>(rng.uniform_int(0, tiles - 1));
    const auto b = static_cast<noc::TileId>(rng.uniform_int(0, tiles - 1));
    if (a == b) continue;
    const double before = ev.cost();
    const double after = ev.apply_swap(a, b);
    if (rng.bernoulli(0.5)) {
      ev.commit_swap();
      (void)after;
    } else {
      ev.revert_swap();
      // Rejected moves must leave zero floating-point residue.
      ASSERT_EQ(ev.cost(), before) << "revert not bitwise at move " << i;
    }
    if (i % 500 == 0) {
      const double full = full_penalized_cost(g, mesh, em, ev.mapping(),
                                              capacity, penalty);
      ASSERT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)))
          << "incremental cost drifted at move " << i;
    }
  }
  // Final check after the full sequence.
  const double full =
      full_penalized_cost(g, mesh, em, ev.mapping(), capacity, penalty);
  EXPECT_NEAR(ev.cost(), full, 1e-9 * std::max(1.0, std::abs(full)));
}

TEST(SwapEvaluator, TracksFullCostMmsGraph) {
  drive_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 0.0, 11);
  drive_and_compare(noc::mms_graph(), noc::Mesh2D(4, 4), 2e9, 12);
}

TEST(SwapEvaluator, TracksFullCostSurveillanceGraph) {
  const auto g = noc::video_surveillance_graph();
  const noc::Mesh2D mesh(4, 4);
  drive_and_compare(g, mesh, 0.0, 21);
  drive_and_compare(g, mesh, 1e9, 22);
}

TEST(SwapEvaluator, TracksFullCostRandomGraphRectangularMesh) {
  sim::Rng grng(33);
  const auto g = noc::random_graph(12, grng, 1e6);
  // Non-square mesh with empty tiles: exercises core<->empty swaps and any
  // x/y confusion in the route table.
  const noc::Mesh2D mesh(5, 3);
  drive_and_compare(g, mesh, 0.0, 31);
  drive_and_compare(g, mesh, 5e5, 32);
}

TEST(XyRouteTable, MatchesMeshRoutes) {
  for (const auto& dims : {std::pair<std::size_t, std::size_t>{4, 4},
                           std::pair<std::size_t, std::size_t>{5, 3}}) {
    const noc::Mesh2D mesh(dims.first, dims.second);
    const noc::XyRouteTable table(mesh);
    for (noc::TileId s = 0; s < mesh.num_tiles(); ++s) {
      for (noc::TileId d = 0; d < mesh.num_tiles(); ++d) {
        ASSERT_EQ(table.hops(s, d), mesh.hops(s, d));
        const auto route = mesh.xy_route(s, d);
        const auto links = table.links(s, d);
        ASSERT_EQ(links.size(), route.size() - 1);
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
          const noc::Dir dir = mesh.xy_next(route[i], d);
          ASSERT_EQ(links[i], mesh.link_index(route[i], dir));
        }
      }
    }
  }
}

TEST(SaMapping, DebugFullEvalReachesSameQuality) {
  const auto g = noc::mms_graph();
  const noc::Mesh2D mesh(4, 4);
  const noc::EnergyModel em;
  noc::SaOptions opts;
  opts.iterations = 4000;
  opts.debug_full_eval = false;
  sim::Rng r1(7);
  const auto inc = noc::sa_mapping(g, mesh, em, r1, opts);
  opts.debug_full_eval = true;
  sim::Rng r2(7);
  const auto full = noc::sa_mapping(g, mesh, em, r2, opts);
  const double ci = noc::evaluate_mapping(g, mesh, em, inc).comm_energy_j;
  const double cf = noc::evaluate_mapping(g, mesh, em, full).comm_energy_j;
  // Same seed, same RNG draw sequence: the two modes walk the same move
  // trajectory except where an accept decision flips inside the ~1e-12
  // incremental/full gap.  Quality must be indistinguishable.
  EXPECT_NEAR(ci, cf, 0.02 * cf);
}

// ---------------------------------------------------------------------------
// Sparse stationary solvers.
// ---------------------------------------------------------------------------

markov::Dtmc birth_death_chain(std::size_t n) {
  markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 0.2;
    if (i + 1 < n) d.set(i, i + 1, 0.5); else stay += 0.5;
    if (i > 0) d.set(i, i - 1, 0.3); else stay += 0.3;
    d.set(i, i, stay);
  }
  return d;
}

TEST(SparseSolve, MatchesDenseBitwise) {
  const markov::Dtmc d = birth_death_chain(128);
  for (const auto method : {markov::SteadyStateMethod::kPowerIteration,
                            markov::SteadyStateMethod::kGaussSeidel}) {
    markov::SolveOptions dense;
    dense.method = method;
    dense.sparsity = markov::SparsityMode::kDense;
    markov::SolveOptions sparse = dense;
    sparse.sparsity = markov::SparsityMode::kSparse;
    const auto rd = d.steady_state(dense);
    const auto rs = d.steady_state(sparse);
    ASSERT_TRUE(rd.converged);
    ASSERT_TRUE(rs.converged);
    EXPECT_FALSE(rd.used_sparse);
    EXPECT_TRUE(rs.used_sparse);
    // Identical iterate sequence => identical iteration count, and the
    // distributions agree far below the 1e-10 requirement (bitwise).
    EXPECT_EQ(rd.iterations, rs.iterations);
    ASSERT_EQ(rd.distribution.size(), rs.distribution.size());
    for (std::size_t i = 0; i < rd.distribution.size(); ++i) {
      EXPECT_NEAR(rd.distribution[i], rs.distribution[i], 1e-10);
      EXPECT_EQ(rd.distribution[i], rs.distribution[i]) << "state " << i;
    }
  }
}

TEST(SparseSolve, CtmcRoutesThroughSparseAutomatically) {
  const std::size_t n = 96;
  markov::Ctmc q(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q.set_rate(i, i + 1, 3.0);
    q.set_rate(i + 1, i, 4.0);
  }
  markov::SolveOptions opts;  // kAuto
  const auto r = q.steady_state(opts);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.used_sparse);  // n >= 64 and tridiagonal density << 0.25
  // Verify against the direct dense solve.
  markov::SolveOptions lu;
  lu.method = markov::SteadyStateMethod::kDirectLU;
  const auto exact = q.steady_state(lu);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.distribution[i], exact.distribution[i], 1e-8);
  }
}

TEST(SparseSolve, AutoStaysDenseWhenSmallOrDense) {
  // Small chain: below sparse_min_states.
  const auto small = birth_death_chain(16).steady_state({});
  EXPECT_FALSE(small.used_sparse);
  // Large but dense chain: uniform transitions have density 1.
  const std::size_t n = 96;
  markov::Dtmc dense(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      dense.set(r, c, 1.0 / static_cast<double>(n));
  const auto rd = dense.steady_state({});
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rd.converged);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  markov::Matrix a(3, 4);
  a.at(0, 1) = 2.0;
  a.at(1, 0) = -1.5;
  a.at(1, 3) = 4.0;
  a.at(2, 2) = 7.0;
  const auto csr = markov::CsrMatrix::from_dense(a);
  EXPECT_EQ(csr.nnz(), 4u);
  EXPECT_NEAR(csr.density(), 4.0 / 12.0, 1e-15);
  const auto t = csr.transposed();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 3u);
  const auto tt = t.transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    const auto cols = tt.row_cols(r);
    const auto vals = tt.row_vals(r);
    std::size_t k = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      if (a.at(r, c) == 0.0) continue;
      ASSERT_LT(k, cols.size());
      EXPECT_EQ(cols[k], c);
      EXPECT_EQ(vals[k], a.at(r, c));
      ++k;
    }
    EXPECT_EQ(k, cols.size());
  }
}

// ---------------------------------------------------------------------------
// Event-pool simulator kernel.
// ---------------------------------------------------------------------------

TEST(EventPool, DeterministicTraceWithBatchesAndCancels) {
  sim::Simulator s;
  std::vector<std::pair<double, int>> trace;
  const auto mark = [&](int tag) { trace.emplace_back(s.now(), tag); };

  s.schedule_at(2.0, [&] { mark(1); });
  const auto victim = s.schedule_at(2.0, [&] { mark(99); });
  s.schedule_at(2.0, [&] { mark(2); });
  s.schedule_at(1.0, [&] {
    mark(0);
    s.cancel(victim);                      // cancels into the future batch
    s.schedule_at(2.0, [&] { mark(3); });  // joins the t=2 cohort (later seq)
    s.schedule_in(0.0, [&] { mark(4); });  // same-timestamp follow-up at t=1
  });
  const std::size_t n = s.run();
  EXPECT_EQ(n, 5u);
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 0}, {1.0, 4}, {2.0, 1}, {2.0, 2}, {2.0, 3}};
  EXPECT_EQ(trace, expected);
}

TEST(EventPool, CancelWithinSameTimestampBatch) {
  sim::Simulator s;
  int ran = 0;
  sim::EventId later{};
  s.schedule_at(1.0, [&] {
    ++ran;
    s.cancel(later);  // target was scheduled at the same timestamp
  });
  later = s.schedule_at(1.0, [&] { ran += 100; });
  s.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(EventPool, StopMidBatchLeavesTailPending) {
  sim::Simulator s;
  std::vector<int> ran;
  s.schedule_at(1.0, [&] { ran.push_back(1); });
  s.schedule_at(1.0, [&] {
    ran.push_back(2);
    s.stop();
  });
  s.schedule_at(1.0, [&] { ran.push_back(3); });
  const std::size_t first = s.run();
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(s.pending(), 1u);
  // Resume: the re-queued tail runs, still at t=1, in original order.
  const std::size_t second = s.run();
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 1.0);
}

TEST(EventPool, LargeCapturesFallBackToHeap) {
  sim::Simulator s;
  std::array<double, 32> payload{};  // 256 bytes: well past the inline buffer
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<double>(i) * 0.5;
  }
  double sum = 0.0;
  s.schedule_at(1.0, [payload, &sum] {
    for (const double v : payload) sum += v;
  });
  s.run();
  EXPECT_NEAR(sum, 0.5 * (31.0 * 32.0 / 2.0), 1e-12);
}

TEST(EventPool, DestructorReleasesUnrunCallbacks) {
  const auto token = std::make_shared<int>(42);
  {
    sim::Simulator s;
    s.schedule_at(1.0, [token] { (void)*token; });         // inline capture
    std::array<std::shared_ptr<int>, 16> many;
    many.fill(token);
    s.schedule_at(2.0, [many] { (void)many; });            // heap fallback
    const auto cancelled = s.schedule_at(3.0, [token] { (void)*token; });
    s.cancel(cancelled);
    EXPECT_GT(token.use_count(), 1);
  }
  // All three never ran; their captures must still have been destroyed.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventPool, SlotsAreRecycledAcrossManyEvents) {
  sim::Simulator s;
  std::size_t count = 0;
  struct Chain {
    sim::Simulator& sim;
    std::size_t& count;
    std::size_t remaining;
    void operator()() const {
      ++count;
      if (remaining > 0) sim.schedule_in(1.0, Chain{sim, count, remaining - 1});
    }
  };
  s.schedule_in(1.0, Chain{s, count, 9999});
  s.run();
  EXPECT_EQ(count, 10000u);
  EXPECT_EQ(s.executed(), 10000u);
  // One live event at a time: the pool never needs more than one slab.
  EXPECT_EQ(s.queue_high_water(), 1u);
}

}  // namespace
