// Unit tests for traffic models, self-similarity and video traces
// (holms::traffic) — paper §3.2.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include <sstream>

#include "sim/stats.hpp"
#include "traffic/selfsim.hpp"
#include "traffic/sources.hpp"
#include "traffic/trace_io.hpp"
#include "traffic/video.hpp"

namespace {

using holms::sim::OnlineStats;
using holms::sim::Rng;
using namespace holms::traffic;

double measured_rate(ArrivalProcess& p, std::size_t n) {
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) t += p.next_interarrival();
  return static_cast<double>(n) / t;
}

TEST(Cbr, ExactSpacing) {
  CbrSource s(4.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.next_interarrival(), 0.25);
  EXPECT_DOUBLE_EQ(s.mean_rate(), 4.0);
}

TEST(Cbr, RejectsNonPositiveRate) {
  EXPECT_THROW(CbrSource(0.0), std::invalid_argument);
}

TEST(Poisson, MeasuredRateMatches) {
  PoissonSource s(5.0, Rng(1));
  EXPECT_NEAR(measured_rate(s, 100000), 5.0, 0.1);
}

TEST(Poisson, InterarrivalsExponential) {
  PoissonSource s(2.0, Rng(2));
  OnlineStats st;
  for (int i = 0; i < 100000; ++i) st.add(s.next_interarrival());
  // Exponential: mean == stddev.
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
  EXPECT_NEAR(st.stddev(), 0.5, 0.01);
}

TEST(Mmpp, MeanRateFormulaAndMeasurement) {
  MmppSource s(1.0, 9.0, 0.5, 1.5, Rng(3));
  // p0 = 1.5/2 = 0.75 -> mean = 0.75*1 + 0.25*9 = 3.
  EXPECT_NEAR(s.mean_rate(), 3.0, 1e-12);
  EXPECT_NEAR(measured_rate(s, 200000), 3.0, 0.15);
}

TEST(Mmpp, BurstierThanPoisson) {
  MmppSource bursty(0.2, 20.0, 0.2, 0.2, Rng(4));
  PoissonSource smooth(10.1, Rng(4));
  const std::size_t slots = 4096;
  auto counts_b = arrivals_per_slot(bursty, 1.0, slots);
  auto counts_p = arrivals_per_slot(smooth, 1.0, slots);
  OnlineStats sb, sp;
  for (double c : counts_b) sb.add(c);
  for (double c : counts_p) sp.add(c);
  // Index of dispersion (var/mean) is ~1 for Poisson, >> 1 for MMPP.
  EXPECT_GT(sb.variance() / sb.mean(), 3.0);
  EXPECT_NEAR(sp.variance() / sp.mean(), 1.0, 0.2);
}

TEST(OnOffPareto, MeanRateWithinTolerance) {
  OnOffParetoSource::Params p;
  p.peak_rate = 10.0;
  p.mean_on = 1.0;
  p.mean_off = 4.0;
  OnOffParetoSource s(p, Rng(5));
  // Duty cycle 0.2 -> mean 2.0.  Heavy tails converge slowly; wide tolerance.
  EXPECT_NEAR(s.mean_rate(), 2.0, 1e-12);
  EXPECT_NEAR(measured_rate(s, 400000), 2.0, 0.5);
}

TEST(OnOffPareto, HurstFromShape) {
  OnOffParetoSource::Params p;
  p.alpha_on = 1.4;
  p.alpha_off = 1.8;
  OnOffParetoSource s(p, Rng(6));
  EXPECT_NEAR(s.hurst(), (3.0 - 1.4) / 2.0, 1e-12);
}

TEST(OnOffPareto, RejectsShapeBelowOne) {
  OnOffParetoSource::Params p;
  p.alpha_on = 0.9;
  EXPECT_THROW(OnOffParetoSource(p, Rng(1)), std::invalid_argument);
}

TEST(Superposed, RateIsSumOfComponents) {
  std::vector<std::unique_ptr<ArrivalProcess>> srcs;
  srcs.push_back(std::make_unique<PoissonSource>(2.0, Rng(7)));
  srcs.push_back(std::make_unique<PoissonSource>(3.0, Rng(8)));
  SuperposedSource s(std::move(srcs));
  EXPECT_NEAR(s.mean_rate(), 5.0, 1e-12);
  EXPECT_NEAR(measured_rate(s, 100000), 5.0, 0.15);
}

TEST(Superposed, GapsAreNonNegativeAndOrdered) {
  std::vector<std::unique_ptr<ArrivalProcess>> srcs;
  for (int i = 0; i < 4; ++i) {
    srcs.push_back(std::make_unique<CbrSource>(1.0 + i));
  }
  SuperposedSource s(std::move(srcs));
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.next_interarrival(), 0.0);
}

TEST(SelfSimilarAggregate, HitsTargetRate) {
  Rng rng(9);
  auto agg = make_selfsimilar_aggregate(16, 50.0, 1.5, rng);
  EXPECT_NEAR(agg->mean_rate(), 50.0, 1e-9);
  EXPECT_NEAR(measured_rate(*agg, 300000), 50.0, 6.0);
}

TEST(ArrivalsPerSlot, ConservesCount) {
  PoissonSource s(7.0, Rng(10));
  const auto counts = arrivals_per_slot(s, 0.5, 2000);
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_NEAR(total / 1000.0, 7.0, 0.5);  // 1000 seconds of arrivals
}

// ---------- fGn + Hurst estimation ----------

TEST(Fgn, AutocovarianceMatchesTheoryShape) {
  // H = 0.5 -> white noise: zero autocovariance at all positive lags.
  EXPECT_NEAR(fgn_autocovariance(0.5, 1), 0.0, 1e-12);
  EXPECT_NEAR(fgn_autocovariance(0.5, 7), 0.0, 1e-12);
  // H > 0.5 -> positive, slowly decaying.
  EXPECT_GT(fgn_autocovariance(0.8, 1), 0.0);
  EXPECT_GT(fgn_autocovariance(0.8, 1), fgn_autocovariance(0.8, 10));
  EXPECT_GT(fgn_autocovariance(0.8, 10), 0.0);
  // H < 0.5 -> negative at lag 1.
  EXPECT_LT(fgn_autocovariance(0.3, 1), 0.0);
}

TEST(Fgn, UnitVarianceAndZeroMean) {
  Rng rng(11);
  const auto xs = fgn_hosking(8192, 0.75, rng);
  OnlineStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), 0.0, 0.15);
  EXPECT_NEAR(s.variance(), 1.0, 0.25);
}

TEST(Fgn, SampleAutocorrMatchesTheory) {
  Rng rng(12);
  const double h = 0.8;
  const auto xs = fgn_hosking(8192, h, rng);
  const double r1 = holms::sim::autocorrelation(xs, 1);
  EXPECT_NEAR(r1, fgn_autocovariance(h, 1), 0.08);
}

TEST(Fgn, RejectsInvalidH) {
  Rng rng(1);
  EXPECT_THROW(fgn_hosking(64, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(fgn_hosking(64, 1.0, rng), std::invalid_argument);
}

struct HurstCase {
  double h;
  double tol;
};

class HurstRecovery : public ::testing::TestWithParam<HurstCase> {};

TEST_P(HurstRecovery, AggregatedVarianceEstimatesH) {
  Rng rng(13);
  const auto xs = fgn_hosking(16384, GetParam().h, rng);
  const double est = hurst_aggregated_variance(xs);
  EXPECT_NEAR(est, GetParam().h, GetParam().tol);
}

TEST_P(HurstRecovery, RsEstimatesH) {
  Rng rng(14);
  const auto xs = fgn_hosking(16384, GetParam().h, rng);
  const double est = hurst_rs(xs);
  // R/S is biased toward 0.5 on short traces; generous tolerance.
  EXPECT_NEAR(est, GetParam().h, GetParam().tol + 0.08);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HurstRecovery,
                         ::testing::Values(HurstCase{0.55, 0.08},
                                           HurstCase{0.7, 0.08},
                                           HurstCase{0.85, 0.08}));

TEST(Hurst, PeriodogramRecoversH) {
  Rng rng(24);
  for (double h : {0.6, 0.85}) {
    const auto xs = fgn_hosking(8192, h, rng);
    EXPECT_NEAR(hurst_periodogram(xs), h, 0.1) << "H=" << h;
  }
}

TEST(Hurst, PeriodogramIidIsNearHalf) {
  Rng rng(25);
  std::vector<double> xs;
  for (int i = 0; i < 8192; ++i) xs.push_back(rng.normal(0, 1));
  EXPECT_NEAR(hurst_periodogram(xs), 0.5, 0.1);
}

TEST(Hurst, PeriodogramRejectsShortTrace) {
  std::vector<double> xs(64, 1.0);
  EXPECT_THROW(hurst_periodogram(xs), std::invalid_argument);
}

TEST(Hurst, IidNoiseIsNearHalf) {
  Rng rng(15);
  std::vector<double> xs;
  for (int i = 0; i < 16384; ++i) xs.push_back(rng.normal(0, 1));
  EXPECT_NEAR(hurst_aggregated_variance(xs), 0.5, 0.07);
}

TEST(Hurst, SelfSimilarTrafficEstimatesAboveHalf) {
  Rng rng(16);
  auto agg = make_selfsimilar_aggregate(32, 40.0, 1.4, rng);
  const auto counts = arrivals_per_slot(*agg, 1.0, 8192);
  const double est = hurst_aggregated_variance(counts);
  EXPECT_GT(est, 0.6);  // theory: H = (3-1.4)/2 = 0.8
}

TEST(Hurst, PoissonTrafficEstimatesNearHalf) {
  PoissonSource s(40.0, Rng(17));
  const auto counts = arrivals_per_slot(s, 1.0, 8192);
  EXPECT_NEAR(hurst_aggregated_variance(counts), 0.5, 0.08);
}

TEST(LsSlope, ExactOnLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};
  EXPECT_NEAR(ls_slope(x, y), 2.0, 1e-12);
}

// ---------- video traces ----------

TEST(VideoTrace, GopPatternIsCorrect) {
  VideoTraceGenerator::Params p;
  p.gop_length = 12;
  p.b_per_anchor = 2;
  VideoTraceGenerator gen(p, Rng(18));
  const auto frames = gen.generate(24);
  // IBBPBBPBBPBB repeated.
  const char* expect = "IBBPBBPBBPBBIBBPBBPBBPBB";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(VideoTraceGenerator::type_name(frames[i].type),
              std::string(1, expect[i]))
        << "frame " << i;
  }
}

TEST(VideoTrace, MeanBitrateWithinTolerance) {
  VideoTraceGenerator::Params p;
  p.mean_bitrate = 4e6;
  p.scene_strength = 0.0;  // disable LRD modulation for a tight check
  VideoTraceGenerator gen(p, Rng(19));
  const auto frames = gen.generate(3000);
  const auto st = summarize(frames, p.frame_rate);
  EXPECT_NEAR(st.mean_bitrate, 4e6, 4e5);
}

TEST(VideoTrace, TypeSizeOrdering) {
  VideoTraceGenerator::Params p;
  p.scene_strength = 0.0;
  VideoTraceGenerator gen(p, Rng(20));
  const auto st = summarize(gen.generate(3000), p.frame_rate);
  EXPECT_GT(st.mean_i, st.mean_p);
  EXPECT_GT(st.mean_p, st.mean_b);
  EXPECT_NEAR(st.mean_i / st.mean_p, p.i_to_p_ratio, 0.5);
  EXPECT_NEAR(st.mean_p / st.mean_b, p.p_to_b_ratio, 0.4);
}

TEST(VideoTrace, ComplexityProportionalToSize) {
  VideoTraceGenerator::Params p;
  VideoTraceGenerator gen(p, Rng(21));
  for (const auto& f : gen.generate(100)) {
    EXPECT_NEAR(f.decode_complexity, f.size_bits * p.cycles_per_bit, 1e-6);
  }
}

TEST(VideoTrace, SceneModulationAddsLongRangeCorrelation) {
  VideoTraceGenerator::Params flat, lrd;
  flat.scene_strength = 0.0;
  lrd.scene_strength = 0.5;
  lrd.scene_hurst = 0.9;
  VideoTraceGenerator g1(flat, Rng(22)), g2(lrd, Rng(22));
  // Aggregate per GOP to remove the deterministic I/P/B periodicity; only
  // the scene process can then correlate distant GOPs.
  auto gop_sizes = [](const std::vector<VideoFrame>& fs, std::size_t gop) {
    std::vector<double> v(fs.size() / gop, 0.0);
    for (const auto& f : fs) {
      if (f.index / gop < v.size()) v[f.index / gop] += f.size_bits;
    }
    return v;
  };
  const auto s1 = gop_sizes(g1.generate(9600), flat.gop_length);
  const auto s2 = gop_sizes(g2.generate(9600), lrd.gop_length);
  const std::size_t lag = 8;
  EXPECT_GT(holms::sim::autocorrelation(s2, lag),
            holms::sim::autocorrelation(s1, lag) + 0.1);
}

TEST(VideoTrace, CountsPerGop) {
  VideoTraceGenerator::Params p;
  VideoTraceGenerator gen(p, Rng(23));
  const auto st = summarize(gen.generate(120), p.frame_rate);
  EXPECT_EQ(st.count_i, 10u);   // one I per 12-frame GOP
  EXPECT_EQ(st.count_p, 30u);   // three P per GOP
  EXPECT_EQ(st.count_b, 80u);   // eight B per GOP
}

// ---------- trace I/O and playback ----------

TEST(TraceIo, CsvRoundTripPreservesFrames) {
  VideoTraceGenerator gen({}, Rng(30));
  const auto original = gen.generate(120);
  std::stringstream buf;
  write_trace_csv(buf, original);
  const auto loaded = read_trace_csv(buf);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].index, original[i].index);
    EXPECT_EQ(loaded[i].type, original[i].type);
    EXPECT_NEAR(loaded[i].size_bits, original[i].size_bits,
                original[i].size_bits * 1e-6 + 1e-6);
  }
}

TEST(TraceIo, RejectsMalformedCsv) {
  std::stringstream bad1("index,type,size_bits,decode_complexity\n1,Q,5,5\n");
  EXPECT_THROW(read_trace_csv(bad1), std::runtime_error);
  std::stringstream bad2("1,I,abc,5\n");
  EXPECT_THROW(read_trace_csv(bad2), std::runtime_error);
  std::stringstream bad3("1,I,5\n");
  EXPECT_THROW(read_trace_csv(bad3), std::runtime_error);
  std::stringstream bad4("1,I,-5,5\n");
  EXPECT_THROW(read_trace_csv(bad4), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  VideoTraceGenerator gen({}, Rng(31));
  const auto original = gen.generate(24);
  const std::string path = "/tmp/holms_trace_test.csv";
  save_trace(path, original);
  const auto loaded = load_trace(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_THROW(load_trace("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(TracePlayback, ReplaysAtFrameRateAndWraps) {
  VideoTraceGenerator gen({}, Rng(32));
  auto frames = gen.generate(10);
  TracePlaybackSource src(frames, 25.0);
  for (int i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(src.next_interarrival(), 0.04);
    EXPECT_NEAR(src.last_frame_bits(), frames[i % 10].size_bits, 1e-9);
  }
  EXPECT_THROW(TracePlaybackSource({}, 25.0), std::invalid_argument);
}

TEST(Replicate, IntervalShrinksWithReplications) {
  auto noisy_experiment = [](std::uint64_t seed) {
    Rng rng(seed);
    holms::sim::OnlineStats s;
    for (int i = 0; i < 100; ++i) s.add(rng.normal(10.0, 2.0));
    return s.mean();
  };
  const auto few = holms::sim::replicate(5, noisy_experiment);
  const auto many = holms::sim::replicate(50, noisy_experiment);
  EXPECT_NEAR(many.stats.mean(), 10.0, 0.2);
  EXPECT_LT(many.half_width_95, few.half_width_95);
  EXPECT_LT(many.relative_error, 0.01);
}

TEST(VideoTrace, RejectsBadParams) {
  VideoTraceGenerator::Params p;
  p.gop_length = 0;
  EXPECT_THROW(VideoTraceGenerator(p, Rng(1)), std::invalid_argument);
}

}  // namespace
