// Unit tests for the holistic layer (holms::core): platform, evaluator,
// explorer, ambient extension — paper §1/§2/§5.
#include <gtest/gtest.h>

#include "core/ambient.hpp"
#include "core/evaluator.hpp"
#include "core/explorer.hpp"
#include "core/platform.hpp"
#include "noc/taskgraph.hpp"

namespace {

using holms::sim::Rng;
using namespace holms::core;

Application small_app() {
  Application app;
  app.name = "diamond";
  const auto a = app.graph.add_node("a", 4e6);
  const auto b = app.graph.add_node("b", 6e6);
  const auto c = app.graph.add_node("c", 5e6);
  const auto d = app.graph.add_node("d", 3e6);
  app.graph.add_edge(a, b, 1e5);
  app.graph.add_edge(a, c, 1e5);
  app.graph.add_edge(b, d, 1e5);
  app.graph.add_edge(c, d, 1e5);
  app.qos.period_s = 0.05;
  return app;
}

Application surveillance_app() {
  Application app;
  app.name = "surveillance";
  Rng rng(3);
  app.graph = holms::noc::random_graph(12, rng, 5e5);
  app.qos.period_s = 0.05;
  return app;
}

TEST(Platform, HomogeneousFactory) {
  const Platform p = Platform::homogeneous(3, 3, asip_tile());
  EXPECT_EQ(p.tiles.size(), 9u);
  for (const auto& t : p.tiles) {
    EXPECT_EQ(t.type, TileType::kAsip);
    EXPECT_DOUBLE_EQ(t.speedup, 4.0);
  }
}

TEST(Platform, TileClassesOrderedByEfficiency) {
  EXPECT_GT(asic_tile().speedup, asip_tile().speedup);
  EXPECT_GT(asip_tile().speedup, gpp_tile().speedup);
  EXPECT_LT(asic_tile().energy_factor, asip_tile().energy_factor);
  EXPECT_LT(asip_tile().energy_factor, gpp_tile().energy_factor);
}

TEST(Evaluator, SchedProblemScalesCyclesBySpeedup) {
  const Application app = small_app();
  Platform plat = Platform::homogeneous(2, 2, asip_tile());  // 4x speedup
  const holms::noc::Mapping m{0, 1, 2, 3};
  const auto prob = make_sched_problem(app, plat, m);
  EXPECT_NEAR(prob.tasks[0].cycles, 1e6, 1);   // 4e6 / 4
  EXPECT_NEAR(prob.tasks[1].cycles, 1.5e6, 1);
  EXPECT_EQ(prob.deps.size(), app.graph.edges().size());
}

TEST(Evaluator, FeasibleDesignOnEasyProblem) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  const holms::noc::Mapping m{0, 1, 2, 3};
  const Evaluation ev = evaluate_design(app, plat, m, true);
  EXPECT_TRUE(ev.deadline_met);
  EXPECT_TRUE(ev.feasible);
  EXPECT_GT(ev.total_energy_j, 0.0);
  EXPECT_NEAR(ev.average_power_w, ev.total_energy_j / 0.05, 1e-12);
}

TEST(Evaluator, DvsReducesEnergy) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  const holms::noc::Mapping m{0, 1, 2, 3};
  const Evaluation edf = evaluate_design(app, plat, m, false);
  const Evaluation dvs = evaluate_design(app, plat, m, true);
  EXPECT_TRUE(dvs.deadline_met);
  EXPECT_LT(dvs.total_energy_j, edf.total_energy_j);
}

TEST(Evaluator, FasterTilesLowerEnergyAndMakespan) {
  const Application app = small_app();
  const Platform gpp = Platform::homogeneous(2, 2, gpp_tile());
  const Platform asic = Platform::homogeneous(2, 2, asic_tile());
  const holms::noc::Mapping m{0, 1, 2, 3};
  const Evaluation e1 = evaluate_design(app, gpp, m, false);
  const Evaluation e2 = evaluate_design(app, asic, m, false);
  EXPECT_LT(e2.schedule.makespan_s, e1.schedule.makespan_s);
  EXPECT_LT(e2.total_energy_j, e1.total_energy_j);
}

TEST(Evaluator, PowerConstraintEnforced) {
  Application app = small_app();
  app.qos.max_power_w = 1e-9;  // impossible cap
  const Platform plat = Platform::homogeneous(2, 2);
  const holms::noc::Mapping m{0, 1, 2, 3};
  const Evaluation ev = evaluate_design(app, plat, m, true);
  EXPECT_FALSE(ev.power_met);
  EXPECT_FALSE(ev.feasible);
}

TEST(Evaluator, MappingSizeMismatchThrows) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  EXPECT_THROW(evaluate_design(app, plat, holms::noc::Mapping{0, 1}, true),
               std::invalid_argument);
}

TEST(Explorer, FindsFeasibleDesignAndParetoFront) {
  const Application app = surveillance_app();
  const Platform plat = Platform::homogeneous(4, 4);
  Rng rng(5);
  ExploreOptions opts;
  opts.restarts = 2;
  opts.sa.iterations = 3000;
  const ExploreResult res = explore(app, plat, rng, opts);
  ASSERT_TRUE(res.found_feasible);
  EXPECT_GT(res.evaluated, 4u);
  EXPECT_TRUE(res.best.eval.feasible);
  ASSERT_FALSE(res.pareto.empty());
  // Pareto front: sorted by energy, makespan must then be non-increasing.
  for (std::size_t i = 0; i + 1 < res.pareto.size(); ++i) {
    EXPECT_LE(res.pareto[i].eval.total_energy_j,
              res.pareto[i + 1].eval.total_energy_j);
    EXPECT_GE(res.pareto[i].eval.schedule.makespan_s,
              res.pareto[i + 1].eval.schedule.makespan_s - 1e-12);
  }
  // Best is the head of the front.
  EXPECT_NEAR(res.best.eval.total_energy_j,
              res.pareto.front().eval.total_energy_j, 1e-15);
}

TEST(Explorer, BestBeatsRandomProbes) {
  const Application app = surveillance_app();
  const Platform plat = Platform::homogeneous(4, 4);
  Rng rng(6);
  const ExploreResult res = explore(app, plat, rng);
  ASSERT_TRUE(res.found_feasible);
  Rng probe_rng(99);
  for (int i = 0; i < 5; ++i) {
    const auto m = holms::noc::random_mapping(app.graph.num_nodes(),
                                              plat.mesh, probe_rng);
    const Evaluation ev = evaluate_design(app, plat, m, true);
    if (ev.feasible) {
      EXPECT_LE(res.best.eval.total_energy_j, ev.total_energy_j * 1.0001);
    }
  }
}

// ---------- multiple applications sharing one platform (§1) ----------

TEST(MultiApp, TwoLightAppsShareFeasibly) {
  const Application a = small_app();
  Application b = small_app();
  b.name = "second";
  const Platform plat = Platform::homogeneous(3, 3);
  const std::vector<Application> apps{a, b};
  // Disjoint tiles: utilizations never collide.
  const std::vector<holms::noc::Mapping> maps{{0, 1, 2, 3}, {4, 5, 6, 7}};
  const MultiAppEvaluation ev =
      evaluate_multi_design(apps, plat, maps, true);
  ASSERT_EQ(ev.per_app.size(), 2u);
  EXPECT_TRUE(ev.schedulable);
  EXPECT_TRUE(ev.feasible);
  EXPECT_LE(ev.max_tile_utilization, 1.0);
  EXPECT_NEAR(ev.total_power_w,
              ev.per_app[0].average_power_w + ev.per_app[1].average_power_w,
              1e-12);
}

TEST(MultiApp, SharedTilesAccumulateUtilization) {
  const Application a = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  const std::vector<Application> apps{a, a};
  const std::vector<holms::noc::Mapping> same{{0, 1, 2, 3}, {0, 1, 2, 3}};
  const std::vector<holms::noc::Mapping> split{{0, 1, 2, 3}, {4, 5, 6, 7}};
  const MultiAppEvaluation shared =
      evaluate_multi_design(apps, plat, same, false);
  const MultiAppEvaluation spread =
      evaluate_multi_design(apps, plat, split, false);
  EXPECT_GT(shared.max_tile_utilization,
            spread.max_tile_utilization * 1.5);
}

TEST(MultiApp, OverloadedTileIsUnschedulable) {
  // Many copies of the app stacked on the same tiles with a short period.
  Application a = small_app();
  a.qos.period_s = 0.012;
  const Platform plat = Platform::homogeneous(3, 3);
  std::vector<Application> apps(4, a);
  std::vector<holms::noc::Mapping> maps(4,
                                        holms::noc::Mapping{0, 1, 2, 3});
  const MultiAppEvaluation ev =
      evaluate_multi_design(apps, plat, maps, false);
  EXPECT_FALSE(ev.schedulable);
  EXPECT_FALSE(ev.feasible);
}

TEST(MultiApp, MismatchedSizesThrow) {
  const Application a = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  EXPECT_THROW(
      evaluate_multi_design({a}, plat, {}, true),
      std::invalid_argument);
}

// ---------- platform synthesis under cost budget ----------

TEST(Synthesis, UpgradesReduceEnergyWithinBudget) {
  const Application app = surveillance_app();
  Rng rng(21);
  SynthesisOptions opts;
  opts.explore.restarts = 1;
  opts.explore.sa.iterations = 1500;
  opts.cost_budget = 30.0;  // room for a few ASIP/ASIC upgrades
  const SynthesisResult res = synthesize_platform(app, 4, 4, rng, opts);
  ASSERT_TRUE(res.found_feasible);
  EXPECT_FALSE(res.trace.empty());
  EXPECT_LE(res.design.best.eval.platform_cost, opts.cost_budget + 1e-9);
  // Energy strictly improves along the trace.
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    EXPECT_LT(res.trace[i].energy_j, res.trace[i - 1].energy_j);
  }
  // Versus the all-GPP starting point.
  Rng rng2(21);
  const Platform gpp = Platform::homogeneous(4, 4);
  const ExploreResult base = explore(app, gpp, rng2, opts.explore);
  ASSERT_TRUE(base.found_feasible);
  EXPECT_LT(res.design.best.eval.total_energy_j,
            base.best.eval.total_energy_j);
}

TEST(Synthesis, TightBudgetBlocksUpgrades) {
  const Application app = surveillance_app();
  Rng rng(22);
  SynthesisOptions opts;
  opts.explore.restarts = 1;
  opts.explore.sa.iterations = 1000;
  // Budget equal to the all-GPP used-tile cost: any upgrade overshoots.
  opts.cost_budget = static_cast<double>(app.graph.num_nodes()) *
                     gpp_tile().unit_cost;
  const SynthesisResult res = synthesize_platform(app, 4, 4, rng, opts);
  EXPECT_TRUE(res.trace.empty());
  for (const auto& t : res.platform.tiles) {
    EXPECT_EQ(t.type, TileType::kGpp);
  }
}

// ---------- manufacturing cost (§1) ----------

TEST(Cost, PlatformCostSumsUsedTiles) {
  const Application app = small_app();
  Platform plat = Platform::homogeneous(3, 3, gpp_tile());
  plat.tiles[1] = asic_tile();
  const holms::noc::Mapping m{0, 1, 2, 3};  // uses one ASIC + three GPPs
  const Evaluation ev = evaluate_design(app, plat, m, true);
  EXPECT_NEAR(ev.platform_cost,
              asic_tile().unit_cost + 3.0 * gpp_tile().unit_cost, 1e-12);
  EXPECT_TRUE(ev.cost_met);  // unconstrained by default
}

TEST(Cost, SharedTileCountedOnce) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  const holms::noc::Mapping m{0, 0, 0, 1};  // three tasks share tile 0
  const Evaluation ev = evaluate_design(app, plat, m, true);
  EXPECT_NEAR(ev.platform_cost, 2.0 * gpp_tile().unit_cost, 1e-12);
}

TEST(Cost, CapMakesExpensiveDesignInfeasible) {
  Application app = small_app();
  app.qos.max_cost = 3.0;  // only three GPP-priced tiles allowed
  const Platform plat = Platform::homogeneous(2, 2, gpp_tile());
  const holms::noc::Mapping spread{0, 1, 2, 3};  // cost 4
  const Evaluation e1 = evaluate_design(app, plat, spread, true);
  EXPECT_FALSE(e1.cost_met);
  EXPECT_FALSE(e1.feasible);
  const holms::noc::Mapping packed{0, 0, 1, 2};  // cost 3
  const Evaluation e2 = evaluate_design(app, plat, packed, true);
  EXPECT_TRUE(e2.cost_met);
}

TEST(Cost, ExplorerRespectsCostCap) {
  Application app = surveillance_app();
  const Platform plat = Platform::homogeneous(4, 4, asip_tile());
  app.qos.max_cost = asip_tile().unit_cost * 12.0;  // every task spread out
  Rng rng(8);
  const ExploreResult res = explore(app, plat, rng);
  if (res.found_feasible) {
    EXPECT_LE(res.best.eval.platform_cost, app.qos.max_cost + 1e-9);
  }
}

TEST(Explorer, EdfOnlyModeSkipsDvsVariants) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  Rng r1(9), r2(9);
  ExploreOptions both, dvs_only;
  both.restarts = 1;
  both.sa.iterations = 500;
  dvs_only = both;
  dvs_only.try_both_schedulers = false;
  const auto a = explore(app, plat, r1, both);
  const auto b = explore(app, plat, r2, dvs_only);
  EXPECT_EQ(a.evaluated, 2 * b.evaluated);
  EXPECT_TRUE(b.found_feasible);
  EXPECT_TRUE(b.best.use_dvs);
}

TEST(Platform, TileTypeNamesDistinct) {
  EXPECT_NE(tile_type_name(TileType::kGpp), tile_type_name(TileType::kAsip));
  EXPECT_NE(tile_type_name(TileType::kAsic),
            tile_type_name(TileType::kMemory));
}

TEST(Evaluator, MemoryTileRunsComputeAtGppSpeed) {
  // memory_tile has speedup 1: a compute task mapped there is legal but
  // gains nothing (the §3.3 advice is to keep memories passive).
  const Application app = small_app();
  Platform plat = Platform::homogeneous(2, 2, memory_tile());
  const holms::noc::Mapping m{0, 1, 2, 3};
  const auto prob = make_sched_problem(app, plat, m);
  EXPECT_NEAR(prob.tasks[0].cycles, app.graph.node(0).compute_cycles, 1e-9);
}

// ---------- ambient extension (§5) ----------

AmbientConfig quick_ambient() {
  AmbientConfig cfg;
  cfg.duration_s = 600.0;
  cfg.tile_mtbf_s = 900.0;  // aggressive failures
  cfg.seed = 11;
  return cfg;
}

TEST(Ambient, AdaptiveRemapBeatsStaticAvailability) {
  const Application app = small_app();
  // 3x3 platform: 5 spare tiles to absorb failures.
  const Platform plat = Platform::homogeneous(3, 3);
  const AmbientResult st = run_ambient_scenario(
      app, plat, FaultPolicy::kStatic, quick_ambient());
  const AmbientResult ad = run_ambient_scenario(
      app, plat, FaultPolicy::kAdaptiveRemap, quick_ambient());
  EXPECT_GT(st.failures_injected, 0u);
  EXPECT_GT(ad.remaps_performed, 0u);
  EXPECT_GT(ad.availability, st.availability);
  EXPECT_EQ(st.periods, ad.periods);
}

TEST(Ambient, AccountingIsConsistent) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  const AmbientResult r = run_ambient_scenario(
      app, plat, FaultPolicy::kAdaptiveRemap, quick_ambient());
  EXPECT_EQ(r.periods, r.periods_ok + r.periods_degraded + r.periods_failed);
  // Fault-displaced degradation is a strict subset of degradation: the
  // partition above is unaffected by the finer-grained counter.
  EXPECT_LE(r.periods_fault_degraded, r.periods_degraded);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_LE(r.availability, 1.0);
}

TEST(Ambient, SharedScheduleReplaysIdentically) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  holms::fault::FaultSchedule::PoissonSpec spec;
  spec.target = holms::fault::Target::kTile;
  spec.num_targets = plat.mesh.num_tiles();
  spec.fail_rate = 1.0 / 400.0;
  spec.repair_rate = 1.0 / 150.0;
  spec.horizon = 600.0;
  const auto sched = holms::fault::FaultSchedule::poisson(3, spec);
  AmbientOptions opts;
  opts.schedule = &sched;
  const AmbientResult a = run_ambient_scenario(
      app, plat, FaultPolicy::kAdaptiveRemap, quick_ambient(), opts);
  const AmbientResult b = run_ambient_scenario(
      app, plat, FaultPolicy::kAdaptiveRemap, quick_ambient(), opts);
  EXPECT_EQ(a.periods_ok, b.periods_ok);
  EXPECT_EQ(a.periods_degraded, b.periods_degraded);
  EXPECT_EQ(a.periods_fault_degraded, b.periods_fault_degraded);
  EXPECT_EQ(a.periods_failed, b.periods_failed);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.repairs_applied, b.repairs_applied);
  EXPECT_EQ(a.remaps_performed, b.remaps_performed);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
}

TEST(Ambient, RepairRestoresDesignMapping) {
  // One tile in use fails and later comes back: the adaptive policy must
  // remap away (displacing the design mapping) and then restore it once the
  // design-time tile is whole again — two remaps, one failure, one repair.
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(3, 3);
  const holms::noc::Mapping design{0, 1, 2, 3};
  const auto sched = holms::fault::FaultSchedule::from_trace({
      {60.0, holms::fault::FaultKind::kFail, holms::fault::Target::kTile, 0},
      {120.0, holms::fault::FaultKind::kRepair, holms::fault::Target::kTile,
       0},
  });
  AmbientConfig cfg = quick_ambient();
  cfg.duration_s = 300.0;
  AmbientOptions opts;
  opts.schedule = &sched;
  opts.initial_mapping = &design;
  const AmbientResult r = run_ambient_scenario(
      app, plat, FaultPolicy::kAdaptiveRemap, cfg, opts);
  EXPECT_EQ(r.failures_injected, 1u);
  EXPECT_EQ(r.repairs_applied, 1u);
  EXPECT_EQ(r.remaps_performed, 2u);  // displace + restore
  EXPECT_EQ(r.periods_failed, 0u);    // spare tiles always available
  EXPECT_EQ(r.periods, r.periods_ok + r.periods_degraded + r.periods_failed);
}

TEST(Ambient, NoFailuresMeansFullAvailability) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  AmbientConfig cfg = quick_ambient();
  cfg.tile_mtbf_s = 1e12;  // effectively no failures
  const AmbientResult r =
      run_ambient_scenario(app, plat, FaultPolicy::kStatic, cfg);
  EXPECT_EQ(r.failures_injected, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Ambient, UserActivityScalesEnergy) {
  const Application app = small_app();
  const Platform plat = Platform::homogeneous(2, 2);
  AmbientConfig busy = quick_ambient();
  busy.tile_mtbf_s = 1e12;
  busy.activity_low = 1.0;  // always high activity
  AmbientConfig calm = busy;
  calm.activity_low = 0.2;
  calm.activity_high = 0.2;  // always low activity
  const AmbientResult rb =
      run_ambient_scenario(app, plat, FaultPolicy::kStatic, busy);
  const AmbientResult rc =
      run_ambient_scenario(app, plat, FaultPolicy::kStatic, calm);
  EXPECT_GT(rb.energy_j, rc.energy_j);
}

}  // namespace
