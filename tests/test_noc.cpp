// Unit tests for the NoC subsystem: topology, graphs, mapping, router,
// scheduling (holms::noc) — paper §3.2/§3.3.
#include <gtest/gtest.h>

#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/scheduling.hpp"
#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"

namespace {

using holms::sim::Rng;
using namespace holms::noc;

// ---------- topology ----------

TEST(Mesh, GeometryBasics) {
  Mesh2D m(4, 3);
  EXPECT_EQ(m.num_tiles(), 12u);
  EXPECT_EQ(m.tile_at(2, 1), 6u);
  EXPECT_EQ(m.x_of(6), 2u);
  EXPECT_EQ(m.y_of(6), 1u);
  EXPECT_EQ(m.hops(0, 11), 5u);  // (0,0) -> (3,2)
  EXPECT_EQ(m.hops(5, 5), 0u);
}

TEST(Mesh, XyRoutingGoesXFirst) {
  Mesh2D m(4, 4);
  const TileId src = m.tile_at(0, 0), dst = m.tile_at(2, 3);
  EXPECT_EQ(m.xy_next(src, dst), Dir::kEast);
  const TileId mid = m.tile_at(2, 0);
  EXPECT_EQ(m.xy_next(mid, dst), Dir::kSouth);
  EXPECT_EQ(m.xy_next(dst, dst), Dir::kLocal);
}

TEST(Mesh, XyRouteIsMinimalAndConnected) {
  Mesh2D m(5, 5);
  const auto path = m.xy_route(m.tile_at(1, 4), m.tile_at(4, 0));
  EXPECT_EQ(path.size(), m.hops(m.tile_at(1, 4), m.tile_at(4, 0)) + 1);
  EXPECT_EQ(path.front(), m.tile_at(1, 4));
  EXPECT_EQ(path.back(), m.tile_at(4, 0));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(m.hops(path[i], path[i + 1]), 1u);
  }
}

TEST(Mesh, NeighborOffMeshThrows) {
  Mesh2D m(2, 2);
  EXPECT_THROW(m.neighbor(0, Dir::kNorth), std::out_of_range);
  EXPECT_THROW(m.neighbor(0, Dir::kWest), std::out_of_range);
  EXPECT_EQ(m.neighbor(0, Dir::kEast), 1u);
  EXPECT_FALSE(m.has_neighbor(0, Dir::kNorth));
  EXPECT_TRUE(m.has_neighbor(0, Dir::kSouth));
}

TEST(EnergyModel, MoreHopsCostMore) {
  EnergyModel e;
  EXPECT_GT(e.bit_energy(3), e.bit_energy(1));
  EXPECT_DOUBLE_EQ(e.bit_energy(0), e.e_router_pj);  // local delivery
  EXPECT_NEAR(e.transfer_energy(1e6, 2),
              1e6 * (3 * e.e_router_pj + 2 * e.e_link_pj) * 1e-12, 1e-18);
}

// ---------- application graphs ----------

TEST(AppGraph, FactoriesProduceConsistentGraphs) {
  for (const AppGraph& g : {mms_graph(), video_surveillance_graph()}) {
    EXPECT_GE(g.num_nodes(), 12u);
    EXPECT_GT(g.edges().size(), g.num_nodes() - 2);
    for (const auto& e : g.edges()) {
      EXPECT_LT(e.src, g.num_nodes());
      EXPECT_LT(e.dst, g.num_nodes());
      EXPECT_GT(e.volume_bits, 0.0);
    }
    EXPECT_GT(g.total_volume(), 0.0);
  }
}

TEST(AppGraph, SurveillancePipelineIsHighestBandwidth) {
  // §3.2: along motion-detect -> filtering the network should provide the
  // highest bandwidth; user-input traffic is orders of magnitude lower.
  const AppGraph g = video_surveillance_graph();
  double md_filt = 0.0, ui = 0.0;
  for (const auto& e : g.edges()) {
    if (g.node(e.src).name == "motion-detect" &&
        g.node(e.dst).name == "filtering") {
      md_filt = e.volume_bits;
    }
    if (g.node(e.src).name == "user-input") ui = e.volume_bits;
  }
  EXPECT_GT(md_filt, 100.0 * ui);
}

TEST(AppGraph, NodeTrafficSumsIncidentEdges) {
  AppGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  g.add_edge(a, b, 10.0);
  g.add_edge(b, c, 5.0);
  EXPECT_DOUBLE_EQ(g.node_traffic(b), 15.0);
  EXPECT_DOUBLE_EQ(g.node_traffic(a), 10.0);
}

TEST(AppGraph, RejectsBadEdges) {
  AppGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  EXPECT_THROW(g.add_edge(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, 0.0), std::invalid_argument);
}

TEST(AppGraph, RandomGraphIsTopologicallyOrdered) {
  Rng rng(1);
  const AppGraph g = random_graph(20, rng);
  for (const auto& e : g.edges()) EXPECT_LT(e.src, e.dst);
  EXPECT_TRUE(is_topologically_ordered(g));
}

TEST(AppGraph, DagVariantsAreSchedulable) {
  EXPECT_TRUE(is_topologically_ordered(video_surveillance_dag()));
  EXPECT_TRUE(is_topologically_ordered(mms_dag()));
  // The cyclic originals are not (they model sustained traffic instead).
  EXPECT_FALSE(is_topologically_ordered(mms_graph()));
  EXPECT_FALSE(is_topologically_ordered(video_surveillance_graph()));
}

TEST(AppGraph, DagVariantsScheduleEndToEnd) {
  Rng rng(2);
  for (const AppGraph& g : {video_surveillance_dag(), mms_dag()}) {
    SchedProblem p;
    p.mesh = Mesh2D(4, 4);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
      p.tasks.push_back({g.node(i).name, g.node(i).compute_cycles});
    }
    for (const auto& e : g.edges()) {
      p.deps.push_back({e.src, e.dst, e.volume_bits});
    }
    p.tile_of = random_mapping(g.num_nodes(), p.mesh, rng);
    p.deadline_s = 0.2;
    const auto edf = schedule_edf(p);
    EXPECT_TRUE(edf.deadline_met);
    EXPECT_TRUE(schedule_is_valid(p, edf));
    const auto eas = schedule_energy_aware(p);
    EXPECT_TRUE(schedule_is_valid(p, eas));
    EXPECT_LE(eas.total_energy_j, edf.total_energy_j + 1e-12);
  }
}

// ---------- mapping ----------

TEST(Mapping, EvaluateSmallCaseByHand) {
  AppGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 1e6);
  Mesh2D mesh(2, 2);
  EnergyModel em;
  const Mapping adjacent{0, 1};      // 1 hop
  const Mapping diagonal{0, 3};      // 2 hops
  const auto e1 = evaluate_mapping(g, mesh, em, adjacent);
  const auto e2 = evaluate_mapping(g, mesh, em, diagonal);
  EXPECT_NEAR(e1.comm_energy_j, em.transfer_energy(1e6, 1), 1e-18);
  EXPECT_NEAR(e2.comm_energy_j, em.transfer_energy(1e6, 2), 1e-18);
  EXPECT_DOUBLE_EQ(e1.volume_weighted_hops, 1.0);
  EXPECT_DOUBLE_EQ(e2.volume_weighted_hops, 2.0);
}

TEST(Mapping, LinkLoadFollowsXyRoute) {
  AppGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, 1e6);
  Mesh2D mesh(3, 3);
  EnergyModel em;
  const Mapping m{0, 8};  // (0,0) -> (2,2): 4 hops
  const auto ev = evaluate_mapping(g, mesh, em, m, 2e6);
  EXPECT_TRUE(ev.bandwidth_feasible);
  EXPECT_DOUBLE_EQ(ev.max_link_load_bps, 1e6);
  const auto ev2 = evaluate_mapping(g, mesh, em, m, 0.5e6);
  EXPECT_FALSE(ev2.bandwidth_feasible);
}

TEST(Mapping, RandomMappingIsInjective) {
  Rng rng(2);
  Mesh2D mesh(4, 4);
  for (int trial = 0; trial < 20; ++trial) {
    const Mapping m = random_mapping(12, mesh, rng);
    std::vector<bool> used(mesh.num_tiles(), false);
    for (TileId t : m) {
      EXPECT_LT(t, mesh.num_tiles());
      EXPECT_FALSE(used[t]);
      used[t] = true;
    }
  }
}

TEST(Mapping, RejectsTooManyCores) {
  Rng rng(3);
  Mesh2D mesh(2, 2);
  EXPECT_THROW(random_mapping(5, mesh, rng), std::invalid_argument);
  EXPECT_THROW(greedy_mapping(mms_graph(), mesh, EnergyModel{}),
               std::invalid_argument);
}

TEST(Mapping, GreedyBeatsRandomOnAverage) {
  const AppGraph g = mms_graph();
  Mesh2D mesh(4, 4);
  EnergyModel em;
  Rng rng(4);
  const double greedy =
      evaluate_mapping(g, mesh, em, greedy_mapping(g, mesh, em)).comm_energy_j;
  double random_sum = 0.0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    random_sum += evaluate_mapping(g, mesh, em,
                                   random_mapping(g.num_nodes(), mesh, rng))
                      .comm_energy_j;
  }
  EXPECT_LT(greedy, random_sum / trials);
}

TEST(Mapping, SaNotWorseThanGreedy) {
  const AppGraph g = mms_graph();
  Mesh2D mesh(4, 4);
  EnergyModel em;
  Rng rng(5);
  SaOptions opts;
  opts.iterations = 5000;
  const double greedy =
      evaluate_mapping(g, mesh, em, greedy_mapping(g, mesh, em)).comm_energy_j;
  const double sa =
      evaluate_mapping(g, mesh, em, sa_mapping(g, mesh, em, rng, opts))
          .comm_energy_j;
  EXPECT_LE(sa, greedy * 1.0001);
}

// ---------- flit-level router ----------

TEST(Router, UncontendedDeliveryIsLossless) {
  Mesh2D mesh(4, 4);
  NocSim::Config cfg;
  NocSim sim(mesh, cfg, Rng(8));
  Flow f;
  f.src = 0;
  f.dst = 15;
  f.packet_flits = 4;
  f.packets_per_cycle = 0.05;
  sim.add_flow(f);
  sim.run(20000);
  const NocStats s = sim.stats();
  EXPECT_GT(s.packets_injected, 500u);
  // All but the in-flight tail delivered.
  EXPECT_GE(s.packets_delivered + 20, s.packets_injected);
  EXPECT_GT(s.mean_packet_latency, 6.0);  // >= hops + serialization
  EXPECT_GT(s.energy_joules, 0.0);
}

TEST(Router, LatencyGrowsWithLoad) {
  Mesh2D mesh(4, 4);
  auto run_at = [&](double rate) {
    NocSim sim(mesh, NocSim::Config{}, Rng(9));
    // Hot-spot pattern: all corners send to the center.
    for (TileId src : {mesh.tile_at(0, 0), mesh.tile_at(3, 0),
                       mesh.tile_at(0, 3), mesh.tile_at(3, 3)}) {
      Flow f;
      f.src = src;
      f.dst = mesh.tile_at(1, 1);
      f.packet_flits = 8;
      f.packets_per_cycle = rate;
      sim.add_flow(f);
    }
    sim.run(30000);
    return sim.stats();
  };
  const NocStats light = run_at(0.005);
  const NocStats heavy = run_at(0.04);
  EXPECT_GT(heavy.mean_packet_latency, light.mean_packet_latency);
  EXPECT_GT(heavy.mean_buffer_occupancy, light.mean_buffer_occupancy);
}

TEST(Router, SaturationCapsDelivery) {
  Mesh2D mesh(3, 3);
  NocSim sim(mesh, NocSim::Config{}, Rng(10));
  // Everyone floods the center: offered >> capacity.
  for (TileId t = 0; t < mesh.num_tiles(); ++t) {
    if (t == mesh.tile_at(1, 1)) continue;
    Flow f;
    f.src = t;
    f.dst = mesh.tile_at(1, 1);
    f.packet_flits = 8;
    f.packets_per_cycle = 0.2;
    sim.add_flow(f);
  }
  sim.run(20000);
  const NocStats s = sim.stats();
  EXPECT_LT(s.packets_delivered, s.packets_injected / 2);
  // The ejection port moves at most 1 flit/cycle: hard ceiling.
  EXPECT_LE(static_cast<double>(s.packets_delivered) * 8.0, 20000.0 * 1.01);
}

TEST(Router, WestFirstDeliversEverythingUncontended) {
  Mesh2D mesh(4, 4);
  NocSim::Config cfg;
  cfg.routing = RoutingAlgo::kWestFirst;
  NocSim sim(mesh, cfg, Rng(12));
  // Exercise all quadrant directions, including pure-west routes.
  const Flow flows[] = {
      {mesh.tile_at(3, 3), mesh.tile_at(0, 0), 0.02, 4},
      {mesh.tile_at(0, 0), mesh.tile_at(3, 3), 0.02, 4},
      {mesh.tile_at(3, 0), mesh.tile_at(0, 3), 0.02, 4},
      {mesh.tile_at(1, 2), mesh.tile_at(2, 1), 0.02, 4},
  };
  NocSim* s = &sim;
  for (const Flow& f : flows) s->add_flow(f);
  sim.run(30000);
  const NocStats st = sim.stats();
  EXPECT_GT(st.packets_injected, 1000u);
  EXPECT_GE(st.packets_delivered + 40, st.packets_injected);
}

TEST(Router, WestFirstAdaptsAroundHotspots) {
  // Under a column hotspot the adaptive algorithm can spill onto a second
  // productive direction; it must at least match XY's delivery and never
  // deadlock.
  for (const RoutingAlgo algo : {RoutingAlgo::kXY, RoutingAlgo::kWestFirst}) {
    Mesh2D mesh(4, 4);
    NocSim::Config cfg;
    cfg.routing = algo;
    NocSim sim(mesh, cfg, Rng(13));
    for (std::size_t y = 0; y < 4; ++y) {
      Flow f;
      f.src = mesh.tile_at(0, y);
      f.dst = mesh.tile_at(3, (y + 2) % 4);
      f.packet_flits = 8;
      f.packets_per_cycle = 0.06;
      sim.add_flow(f);
    }
    sim.run(30000);
    const NocStats st = sim.stats();
    EXPECT_GT(st.packets_delivered, st.packets_injected / 2)
        << "algo " << static_cast<int>(algo);
  }
}

TEST(Router, RejectsInvalidFlows) {
  Mesh2D mesh(2, 2);
  NocSim sim(mesh, NocSim::Config{}, Rng(11));
  Flow f;
  f.src = 0;
  f.dst = 0;
  EXPECT_THROW(sim.add_flow(f), std::invalid_argument);
  f.dst = 1;
  f.packet_flits = 0;
  EXPECT_THROW(sim.add_flow(f), std::invalid_argument);
  f.packet_flits = 2;
  f.packets_per_cycle = 2.0;
  EXPECT_THROW(sim.add_flow(f), std::invalid_argument);
}

TEST(Mapping, BranchAndBoundIsExactOnSmallGraphs) {
  // Brute-force reference on a tiny instance.
  Rng rng(31);
  const AppGraph g = random_graph(5, rng, 1e6);
  Mesh2D mesh(2, 3);
  EnergyModel em;
  const Mapping bb = bb_mapping(g, mesh, em);
  const double bb_cost = evaluate_mapping(g, mesh, em, bb).comm_energy_j;
  // Exhaustive check over all injective placements (6P5 = 720).
  std::vector<TileId> tiles{0, 1, 2, 3, 4, 5};
  double best = 1e300;
  std::sort(tiles.begin(), tiles.end());
  do {
    const Mapping m(tiles.begin(), tiles.begin() + 5);
    best = std::min(best, evaluate_mapping(g, mesh, em, m).comm_energy_j);
  } while (std::next_permutation(tiles.begin(), tiles.end()));
  EXPECT_NEAR(bb_cost, best, best * 1e-12);
}

TEST(Mapping, HeuristicsWithinFactorOfOptimal) {
  Rng rng(32);
  const AppGraph g = random_graph(8, rng, 1e6);
  Mesh2D mesh(3, 3);
  EnergyModel em;
  const double opt =
      evaluate_mapping(g, mesh, em, bb_mapping(g, mesh, em)).comm_energy_j;
  SaOptions sa;
  sa.iterations = 8000;
  Rng sa_rng(33);
  const double sa_cost =
      evaluate_mapping(g, mesh, em, sa_mapping(g, mesh, em, sa_rng, sa))
          .comm_energy_j;
  EXPECT_GE(sa_cost, opt - 1e-15);      // optimal is a lower bound
  EXPECT_LE(sa_cost, opt * 1.10);       // SA lands within 10% here
}

TEST(Mapping, BbBudgetFallsBackToIncumbent) {
  Rng rng(34);
  const AppGraph g = random_graph(8, rng, 1e6);
  Mesh2D mesh(3, 3);
  EnergyModel em;
  const Mapping limited = bb_mapping(g, mesh, em, /*node_budget=*/1);
  const Mapping greedy = greedy_mapping(g, mesh, em);
  EXPECT_LE(evaluate_mapping(g, mesh, em, limited).comm_energy_j,
            evaluate_mapping(g, mesh, em, greedy).comm_energy_j + 1e-15);
}

// ---------- virtual channels ----------

class VcSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VcSweep, DeliveryConservedAcrossVcCounts) {
  Mesh2D mesh(3, 3);
  NocSim::Config cfg;
  cfg.virtual_channels = GetParam();
  NocSim sim(mesh, cfg, Rng(21));
  Flow f;
  f.src = 0;
  f.dst = 8;
  f.packet_flits = 6;
  f.packets_per_cycle = 0.02;
  sim.add_flow(f);
  Flow g;
  g.src = 2;
  g.dst = 6;
  g.packet_flits = 6;
  g.packets_per_cycle = 0.02;
  sim.add_flow(g);
  sim.run(30000);
  const auto s = sim.stats();
  EXPECT_LE(s.packets_delivered, s.packets_injected);
  EXPECT_GE(s.packets_delivered + 30, s.packets_injected);
}

INSTANTIATE_TEST_SUITE_P(Counts, VcSweep, ::testing::Values(1, 2, 4));

TEST(VirtualChannels, RelieveHeadOfLineBlockingBelowSaturation) {
  // At moderate uniform load, head-of-line blocking inflates the latency
  // tail with one VC; extra VCs let packets slip past blocked worms.
  // (Above saturation VCs only add buffering, so the comparison must be
  // made below the knee.)
  auto run_with = [](std::size_t vcs) {
    Mesh2D mesh(4, 4);
    NocSim::Config cfg;
    cfg.virtual_channels = vcs;
    cfg.buffer_depth = 4;
    return latency_throughput_sweep(mesh, TrafficPattern::kUniformRandom,
                                    {0.04}, 30000, cfg, 22)[0];
  };
  const SweepPoint one = run_with(1);
  const SweepPoint two = run_with(2);
  EXPECT_GE(two.delivery_ratio, one.delivery_ratio - 0.01);
  EXPECT_LT(two.p99_latency, one.p99_latency);
}

TEST(VirtualChannels, RejectZeroVcs) {
  Mesh2D mesh(2, 2);
  NocSim::Config cfg;
  cfg.virtual_channels = 0;
  EXPECT_THROW(NocSim(mesh, cfg, Rng(1)), std::invalid_argument);
}

// ---------- synthetic traffic patterns ----------

TEST(Patterns, TransposeAndComplementTargetsAreCorrect) {
  Mesh2D mesh(4, 4);
  NocSim sim(mesh, NocSim::Config{}, Rng(14));
  // Just exercising construction: flows must be legal for every tile.
  EXPECT_NO_THROW(add_pattern_flows(sim, mesh, TrafficPattern::kTranspose,
                                    0.01, 4));
  EXPECT_NO_THROW(add_pattern_flows(
      sim, mesh, TrafficPattern::kBitComplement, 0.01, 4));
  EXPECT_NO_THROW(add_pattern_flows(sim, mesh, TrafficPattern::kHotspot,
                                    0.01, 4));
  EXPECT_NO_THROW(add_pattern_flows(
      sim, mesh, TrafficPattern::kUniformRandom, 0.01, 4));
  sim.run(2000);
  EXPECT_GT(sim.stats().packets_delivered, 0u);
}

TEST(Patterns, AppGraphFlowsScaleWithVolume) {
  const AppGraph g = video_surveillance_graph();
  Mesh2D mesh(4, 4);
  Rng rng(40);
  const Mapping m = random_mapping(g.num_nodes(), mesh, rng);
  NocSim sim(mesh, NocSim::Config{}, Rng(41));
  add_appgraph_flows(sim, g, m, 0.2, 8);
  sim.run(20000);
  const auto s = sim.stats();
  // Aggregate Bernoulli rate 0.2/cycle over 20000 cycles ~ 4000 packets.
  EXPECT_NEAR(static_cast<double>(s.packets_injected), 4000.0, 400.0);
  EXPECT_GT(s.packets_delivered, s.packets_injected / 2);
  // Mapping-size mismatch is rejected.
  NocSim sim2(mesh, NocSim::Config{}, Rng(42));
  EXPECT_THROW(add_appgraph_flows(sim2, g, Mapping{0, 1}, 0.1, 8),
               std::invalid_argument);
}

TEST(Patterns, SweepShowsSaturationKnee) {
  Mesh2D mesh(4, 4);
  const std::vector<double> rates{0.002, 0.01, 0.05, 0.15};
  const auto curve = latency_throughput_sweep(
      mesh, TrafficPattern::kUniformRandom, rates, 20000, NocSim::Config{},
      7);
  ASSERT_EQ(curve.size(), rates.size());
  // Latency is non-decreasing in offered load; low load delivers ~all.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].mean_latency, curve[i - 1].mean_latency * 0.95);
  }
  EXPECT_GT(curve.front().delivery_ratio, 0.95);
  EXPECT_LT(curve.back().delivery_ratio, curve.front().delivery_ratio);
  // Accepted throughput saturates: the last step gains little.
  EXPECT_LT(curve[3].accepted_flits_per_cycle,
            curve[2].accepted_flits_per_cycle * 3.0);
}

TEST(Patterns, HotspotSaturatesBeforeUniform) {
  Mesh2D mesh(4, 4);
  const std::vector<double> rates{0.03};
  const auto uni = latency_throughput_sweep(
      mesh, TrafficPattern::kUniformRandom, rates, 20000, NocSim::Config{},
      8);
  const auto hot = latency_throughput_sweep(
      mesh, TrafficPattern::kHotspot, rates, 20000, NocSim::Config{}, 8);
  EXPECT_LT(hot.front().delivery_ratio, uni.front().delivery_ratio);
}

// ---------- scheduling ----------

SchedProblem small_problem() {
  SchedProblem p;
  p.mesh = Mesh2D(2, 2);
  // Diamond DAG: 0 -> {1, 2} -> 3.
  p.tasks = {{"a", 4e6}, {"b", 6e6}, {"c", 5e6}, {"d", 3e6}};
  p.deps = {{0, 1, 1e5}, {0, 2, 1e5}, {1, 3, 1e5}, {2, 3, 1e5}};
  p.tile_of = {0, 1, 2, 3};
  p.deadline_s = 0.05;
  return p;
}

TEST(Scheduling, EdfMeetsDeadlineAndIsValid) {
  const SchedProblem p = small_problem();
  const ScheduleResult r = schedule_edf(p);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_TRUE(schedule_is_valid(p, r));
  // At the top point every task runs at max frequency.
  for (const auto& pl : r.placement) {
    EXPECT_EQ(pl.dvs_level, p.points.size() - 1);
  }
}

TEST(Scheduling, EnergyAwareSavesEnergyWithSlack) {
  const SchedProblem p = small_problem();
  const ScheduleResult edf = schedule_edf(p);
  for (auto policy :
       {SlackPolicy::kProportional, SlackPolicy::kGreedyLongest}) {
    const ScheduleResult eas = schedule_energy_aware(p, policy);
    EXPECT_TRUE(eas.deadline_met);
    EXPECT_TRUE(schedule_is_valid(p, eas));
    EXPECT_LT(eas.compute_energy_j, edf.compute_energy_j);
    EXPECT_LT(eas.total_energy_j, edf.total_energy_j);
  }
}

TEST(Scheduling, NoSlackMeansNoSavings) {
  SchedProblem p = small_problem();
  // Shrink the deadline to just above the fastest makespan.
  const ScheduleResult fast = schedule_edf(p);
  p.deadline_s = fast.makespan_s * 1.001;
  const ScheduleResult eas = schedule_energy_aware(p);
  EXPECT_TRUE(eas.deadline_met);
  // Nearly everything must stay at (or near) the top level.
  EXPECT_GT(eas.compute_energy_j, 0.9 * fast.compute_energy_j);
}

TEST(Scheduling, InfeasibleDeadlineReported) {
  SchedProblem p = small_problem();
  p.deadline_s = 1e-6;
  const ScheduleResult r = schedule_energy_aware(p);
  EXPECT_FALSE(r.deadline_met);
}

TEST(Scheduling, SharedTileSerializes) {
  SchedProblem p = small_problem();
  p.tile_of = {0, 1, 1, 2};  // b and c share tile 1
  const ScheduleResult r = schedule_edf(p);
  EXPECT_TRUE(schedule_is_valid(p, r));
  // b and c cannot overlap: makespan grows vs the fully spread mapping.
  const ScheduleResult spread = schedule_edf(small_problem());
  EXPECT_GT(r.makespan_s, spread.makespan_s);
}

TEST(Scheduling, CommDelayPushesStart) {
  SchedProblem p = small_problem();
  p.deps[0].volume_bits = 1e9;  // 0->1 becomes a huge transfer
  const ScheduleResult r = schedule_edf(p);
  EXPECT_TRUE(schedule_is_valid(p, r));
  EXPECT_GT(r.placement[1].start,
            r.placement[0].finish + 0.4);  // ~1e9 / 2e9 bps
}

TEST(Scheduling, RejectsNonTopologicalOrder) {
  SchedProblem p = small_problem();
  p.deps.push_back({3, 0, 1e5});  // cycle
  EXPECT_THROW(schedule_edf(p), std::invalid_argument);
}

}  // namespace
