// Claim-regression tests: quick versions of the paper's headline numbers,
// locked into the suite so a refactor that silently breaks an experiment's
// *shape* (who wins, by roughly what factor) fails CI — not just the bench
// printout.  Thresholds are set below the measured values in EXPERIMENTS.md
// to leave seed robustness margin.
#include <gtest/gtest.h>

#include "asip/extensions.hpp"
#include "asip/kernels.hpp"
#include "manet/routing.hpp"
#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/scheduling.hpp"
#include "noc/taskgraph.hpp"
#include "sim/random.hpp"
#include "streaming/fgs.hpp"
#include "wireless/jscc.hpp"

namespace {

using holms::sim::Rng;

// E1: 5-10x ASIP speedup, <10 custom instructions, <200k gates.
TEST(Claims, E1_AsipSpeedupInPaperBand) {
  holms::asip::VoiceRecognitionApp app;
  const auto base = evaluate_app(app, holms::asip::CoreConfig{}, {});
  holms::asip::CoreConfig tuned;
  tuned.include_mac_block = true;
  tuned.dcache_lines = 256;
  const std::vector<std::string> exts = {
      holms::asip::kExtMacLoad, holms::asip::kExtSqdLoad,
      holms::asip::kExtAbsDiff, holms::asip::kExtDtwCell};
  const auto accel = evaluate_app(app, tuned, exts);
  const double speedup = static_cast<double>(base.cycles) /
                         static_cast<double>(accel.cycles);
  EXPECT_GE(speedup, 5.0);
  EXPECT_LE(speedup, 10.0);
  std::vector<holms::asip::Extension> sel;
  for (const auto& n : exts) sel.push_back(holms::asip::find_extension(n));
  EXPECT_LT(sel.size(), 10u);
  EXPECT_LT(holms::asip::total_gates(tuned, sel), 200000.0);
}

// E4: >50% NoC mapping energy savings vs ad-hoc on the MMS application.
TEST(Claims, E4_MappingSavesMajorityVsAdhoc) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  Rng rng(7);
  double adhoc = 0.0;
  const int trials = 15;
  for (int i = 0; i < trials; ++i) {
    adhoc += holms::noc::evaluate_mapping(
                 g, mesh, em,
                 holms::noc::random_mapping(g.num_nodes(), mesh, rng))
                 .comm_energy_j;
  }
  adhoc /= trials;
  holms::noc::SaOptions sa;
  sa.iterations = 12000;
  const double tuned =
      holms::noc::evaluate_mapping(
          g, mesh, em, holms::noc::sa_mapping(g, mesh, em, rng, sa))
          .comm_energy_j;
  EXPECT_GE(1.0 - tuned / adhoc, 0.45);
}

// E6: >40% scheduling energy savings vs EDF at slack 2.
TEST(Claims, E6_EnergyAwareSchedulingSavesFortyPercent) {
  const auto g = holms::noc::mms_dag();
  holms::noc::SchedProblem p;
  p.mesh = holms::noc::Mesh2D(4, 4);
  Rng rng(42);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    p.tasks.push_back({g.node(i).name, g.node(i).compute_cycles});
  }
  for (const auto& e : g.edges()) {
    p.deps.push_back({e.src, e.dst, e.volume_bits});
  }
  p.tile_of = holms::noc::random_mapping(g.num_nodes(), p.mesh, rng);
  p.deadline_s = 1.0;
  const auto fast = holms::noc::schedule_edf(p);
  p.deadline_s = fast.makespan_s * 2.0;
  const auto edf = holms::noc::schedule_edf(p);
  const auto eas = holms::noc::schedule_energy_aware(
      p, holms::noc::SlackPolicy::kGreedyLongest);
  ASSERT_TRUE(eas.deadline_met);
  EXPECT_GE(1.0 - eas.total_energy_j / edf.total_energy_j, 0.40);
}

// E8: ~60% average JSCC energy saving across channel conditions.
TEST(Claims, E8_JsccSavesMajorityOnAverage) {
  holms::wireless::JsccOptimizer opt(holms::wireless::ImageModel{},
                                     holms::wireless::RadioModel{},
                                     holms::wireless::JsccOptimizer::Options{});
  const double worst = 5e-13;
  const auto base = opt.baseline(worst);
  ASSERT_TRUE(base.feasible);
  double save = 0.0;
  int n = 0;
  for (double db = -123.0; db <= -99.0; db += 6.0) {
    const double gain = std::pow(10.0, db / 10.0);
    const auto tuned = opt.optimize(gain);
    if (!tuned.feasible) continue;
    const auto base_here = opt.evaluate(base, gain);
    save += 1.0 - tuned.total_energy_j / base_here.total_energy_j;
    ++n;
  }
  ASSERT_GT(n, 2);
  EXPECT_GE(save / n, 0.50);
}

// E9: double-digit client communication-energy saving for a decode-limited
// client (the paper's 15% regime).
TEST(Claims, E9_FgsFeedbackSavesClientCommEnergy) {
  std::vector<holms::dvfs::OperatingPoint> weak = {
      {80e6, 0.75}, {120e6, 0.9}, {150e6, 1.0}};
  holms::streaming::ChannelTrace t1{Rng(4)};
  holms::streaming::ChannelTrace t2{Rng(4)};
  holms::dvfs::Processor c1(weak, holms::dvfs::PowerModel{});
  holms::dvfs::Processor c2(weak, holms::dvfs::PowerModel{});
  const auto blind = run_fgs_session(
      holms::streaming::FgsPolicy::kNonAdaptive, {}, c1, t1, 2000);
  const auto fb = run_fgs_session(
      holms::streaming::FgsPolicy::kClientFeedback, {}, c2, t2, 2000);
  EXPECT_GE(1.0 - fb.client_rx_energy_j / blind.client_rx_energy_j, 0.10);
  EXPECT_GE(fb.mean_psnr_db, blind.mean_psnr_db - 0.5);
}

// E10: >20% network-lifetime improvement of battery-aware routing.
TEST(Claims, E10_BatteryAwareRoutingExtendsLifetime) {
  holms::manet::Manet::Params params;
  params.num_nodes = 30;
  params.field_m = 320.0;
  params.battery_j = 6.0;
  holms::manet::LifetimeConfig cfg;
  cfg.num_flows = 6;
  cfg.packets_per_second = 15.0;
  cfg.max_time_s = 6000.0;
  cfg.mobile = false;
  double mpr = 0.0, bc = 0.0;
  for (int s = 0; s < 2; ++s) {
    mpr += simulate_lifetime(holms::manet::Protocol::kMinPower, params, cfg,
                             900 + s)
               .lifetime_s;
    bc += simulate_lifetime(holms::manet::Protocol::kBatteryCost, params,
                            cfg, 900 + s)
              .lifetime_s;
  }
  EXPECT_GE(bc, mpr * 1.20);
}

// E2: the analytical model agrees with itself across solvers and the
// producer-consumer throughput identity holds.
TEST(Claims, E2_AnalyticalThroughputIdentity) {
  holms::markov::ProducerConsumerModel m;
  m.producer_rate = 80.0;
  m.consumer_rate = 50.0;
  m.buffer_capacity = 8;
  const auto r = m.analyze();
  // Flow conservation: accepted producer rate == consumer throughput.
  EXPECT_NEAR(m.producer_rate * (1.0 - r.producer_blocked), r.throughput,
              1e-6);
}

}  // namespace
