// Robustness and failure-injection tests: every public entry point must
// either produce a defined result or throw a typed exception — never crash,
// hang, or silently return garbage — under degenerate configurations.
#include <gtest/gtest.h>

#include "asip/assembler.hpp"
#include "asip/builder.hpp"
#include "asip/iss.hpp"
#include "core/ambient.hpp"
#include "core/explorer.hpp"
#include "fault/schedule.hpp"
#include "manet/routing.hpp"
#include "markov/chain.hpp"
#include "markov/jackson.hpp"
#include "noc/router.hpp"
#include "noc/scheduling.hpp"
#include "sim/simulator.hpp"
#include "stream/kpn.hpp"
#include "stream/lipsync.hpp"
#include "stream/stream_system.hpp"
#include "streaming/fgs.hpp"
#include "traffic/sources.hpp"
#include "wireless/jscc.hpp"

namespace {

using holms::sim::Rng;

// ---------- sim ----------

TEST(Robust, SimulatorSelfCancellingEvent) {
  holms::sim::Simulator sim;
  holms::sim::EventId id{};
  id = sim.schedule_at(1.0, [&] { sim.cancel(id); });  // cancels itself, late
  EXPECT_NO_THROW(sim.run());
}

TEST(Robust, SimulatorCancelTwice) {
  holms::sim::Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Robust, SimulatorEmptyRunAdvancesClock) {
  holms::sim::Simulator sim;
  sim.run(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

// ---------- markov ----------

TEST(Robust, SingleStateChain) {
  holms::markov::Dtmc d(1);
  d.set(0, 0, 1.0);
  const auto r = d.steady_state();
  ASSERT_EQ(r.distribution.size(), 1u);
  EXPECT_DOUBLE_EQ(r.distribution[0], 1.0);
}

TEST(Robust, PeriodicChainStillSolvableByDirectMethod) {
  // Period-2 chain: power iteration oscillates, LU does not care.
  holms::markov::Dtmc d(2);
  d.set(0, 1, 1.0);
  d.set(1, 0, 1.0);
  holms::markov::SolveOptions lu;
  lu.method = holms::markov::SteadyStateMethod::kDirectLU;
  const auto r = d.steady_state(lu);
  EXPECT_NEAR(r.distribution[0], 0.5, 1e-9);
}

TEST(Robust, JacksonTrappedCycleThrows) {
  holms::markov::JacksonNetwork net({{5.0, 1.0}, {5.0, 0.0}});
  net.set_routing(0, 1, 1.0);
  net.set_routing(1, 0, 1.0);  // nothing ever leaves
  EXPECT_THROW(net.solve(), std::runtime_error);
}

// ---------- stream ----------

TEST(Robust, StreamZeroDurationIsEmptyReport) {
  holms::traffic::CbrSource src(10.0);
  holms::stream::IidErrorModel err(0.0, Rng(1));
  const auto q = run_stream(src, err, holms::stream::StreamConfig{}, 0.0);
  EXPECT_EQ(q.delivered, 0u);
  EXPECT_DOUBLE_EQ(q.loss_rate, 0.0);
}

TEST(Robust, StreamFullyLossyChannel) {
  holms::traffic::CbrSource src(50.0);
  holms::stream::IidErrorModel err(1.0, Rng(2));
  holms::stream::StreamConfig cfg;
  cfg.arq_max_retransmissions = 2;
  const auto q = run_stream(src, err, cfg, 10.0);
  EXPECT_EQ(q.delivered, 0u);
  EXPECT_NEAR(q.loss_rate, 1.0, 1e-9);
  EXPECT_GT(q.retransmissions, 0u);
}

TEST(Robust, ProcessNetworkWithNoSourcesDrainsImmediately) {
  holms::sim::Simulator sim;
  holms::stream::ProcessNetwork net(sim);
  const auto cpu = net.add_cpu();
  holms::stream::NodeSpec w;
  w.name = "idle";
  w.cpu = cpu;
  w.service_time = [](const holms::stream::Token&) { return 1.0; };
  const auto a = net.add_worker(std::move(w));
  const auto sink = net.add_sink("sink");
  net.connect(a, sink, 2);
  net.start();
  sim.run(10.0);
  net.finish();
  EXPECT_EQ(net.tokens_delivered(), 0u);
}

TEST(Robust, LipsyncZeroDuration) {
  const auto r = holms::stream::run_lipsync({}, 0.0, 1);
  EXPECT_EQ(r.presented, 0u);
  EXPECT_DOUBLE_EQ(r.in_sync_fraction, 0.0);
}

// ---------- asip ----------

TEST(Robust, IssEmptyProgramHalts) {
  holms::asip::Iss iss(holms::asip::CoreConfig{}, {});
  const auto r = iss.run(holms::asip::Program{});
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Robust, IssFallingOffTheEndStops) {
  holms::asip::ProgramBuilder b;
  b.li(1, 1);  // no halt
  holms::asip::Iss iss(holms::asip::CoreConfig{}, {});
  const auto r = iss.run(b.build());
  EXPECT_EQ(r.instructions, 1u);
}

TEST(Robust, IssRegionMapMismatchThrows) {
  holms::asip::Program p;
  p.code.push_back({holms::asip::Opcode::kHalt, 0, 0, 0, 0});
  // region left empty -> mismatch
  holms::asip::Iss iss(holms::asip::CoreConfig{}, {});
  EXPECT_THROW(iss.run(p), std::invalid_argument);
}

TEST(Robust, AssemblerEmptySourceIsEmptyProgram) {
  const auto p = holms::asip::assemble("  \n ; nothing here\n");
  EXPECT_EQ(p.size(), 0u);
}

TEST(Robust, IssOutOfRangeMemoryThrows) {
  holms::asip::ProgramBuilder b;
  b.li(1, 1 << 20);  // far beyond the 64k-word memory
  b.lw(2, 1, 0);
  b.halt();
  holms::asip::Iss iss(holms::asip::CoreConfig{}, {});
  EXPECT_THROW(iss.run(b.build()), std::out_of_range);
}

// ---------- noc ----------

TEST(Robust, SingleTileMeshHasNoFlows) {
  holms::noc::Mesh2D mesh(1, 1);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{}, Rng(3));
  holms::noc::Flow f;
  f.src = 0;
  f.dst = 0;
  EXPECT_THROW(sim.add_flow(f), std::invalid_argument);
  EXPECT_NO_THROW(sim.run(100));
  EXPECT_EQ(sim.stats().packets_injected, 0u);
}

TEST(Robust, NocZeroBufferDepthThrows) {
  holms::noc::Mesh2D mesh(2, 2);
  holms::noc::NocSim::Config cfg;
  cfg.buffer_depth = 0;
  EXPECT_THROW(holms::noc::NocSim(mesh, cfg, Rng(3)), std::invalid_argument);
}

TEST(Robust, NocZeroVirtualChannelsThrows) {
  holms::noc::Mesh2D mesh(2, 2);
  holms::noc::NocSim::Config cfg;
  cfg.virtual_channels = 0;
  EXPECT_THROW(holms::noc::NocSim(mesh, cfg, Rng(3)), std::invalid_argument);
}

TEST(Robust, NocFaultScheduleIdOutOfRangeThrows) {
  holms::noc::Mesh2D mesh(2, 2);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{}, Rng(3));
  const auto bad_link = holms::fault::FaultSchedule::from_trace(
      {{1.0, holms::fault::FaultKind::kFail, holms::fault::Target::kLink,
        mesh.num_undirected_links()}});
  EXPECT_THROW(sim.attach_fault_schedule(&bad_link), std::invalid_argument);
  const auto bad_tile = holms::fault::FaultSchedule::from_trace(
      {{1.0, holms::fault::FaultKind::kFail, holms::fault::Target::kTile,
        mesh.num_tiles()}});
  EXPECT_THROW(sim.attach_fault_schedule(&bad_tile), std::invalid_argument);
}

TEST(Robust, NocSetLinkUpNoSuchLinkThrows) {
  holms::noc::Mesh2D mesh(2, 2);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{}, Rng(3));
  // Tile 1 is the north-east corner of the 2x2 mesh: no east neighbor.
  EXPECT_THROW(sim.set_link_up(1, holms::noc::Dir::kEast, false),
               std::invalid_argument);
  EXPECT_THROW(sim.set_link_up(0, holms::noc::Dir::kLocal, false),
               std::invalid_argument);
}

TEST(Robust, NocZeroCyclesRun) {
  holms::noc::Mesh2D mesh(2, 2);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{}, Rng(4));
  sim.run(0);
  EXPECT_EQ(sim.stats().packets_delivered, 0u);
}

TEST(Robust, SchedulerEmptyTaskListThrows) {
  holms::noc::SchedProblem p;
  EXPECT_THROW(holms::noc::schedule_edf(p), std::invalid_argument);
}

TEST(Robust, SchedulerSingleTask) {
  holms::noc::SchedProblem p;
  p.mesh = holms::noc::Mesh2D(2, 2);
  p.tasks = {{"only", 1e6}};
  p.tile_of = {0};
  p.deadline_s = 1.0;
  const auto r = holms::noc::schedule_edf(p);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_TRUE(holms::noc::schedule_is_valid(p, r));
}

// ---------- wireless / streaming ----------

TEST(Robust, JsccImpossibleDistortionBudget) {
  holms::wireless::JsccOptimizer::Options opts;
  opts.max_distortion = 1e-9;  // unreachable even at max rate
  holms::wireless::JsccOptimizer opt(holms::wireless::ImageModel{},
                                     holms::wireless::RadioModel{}, opts);
  const auto c = opt.optimize(1e-8);
  EXPECT_FALSE(c.feasible);  // reported, not crashed
}

TEST(Robust, FgsSingleSlot) {
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace tr{Rng(5)};
  const auto r = holms::streaming::run_fgs_session(
      holms::streaming::FgsPolicy::kClientFeedback, {}, cpu, tr, 1);
  EXPECT_EQ(r.slots, 1u);
  EXPECT_GT(r.client_total_energy_j, 0.0);
}

// ---------- manet ----------

TEST(Robust, ManetAllNodesDeadStopsSimulation) {
  holms::manet::Manet::Params p;
  p.num_nodes = 5;
  p.battery_j = 1e-6;  // everyone dies on the first flood
  holms::manet::LifetimeConfig cfg;
  cfg.max_time_s = 100.0;
  const auto r = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kMinPower, p, cfg, 6);
  EXPECT_LE(r.lifetime_s, 100.0);
  EXPECT_GT(r.route_discoveries, 0u);
}

TEST(Robust, ManetNonPositiveRadioRangeThrows) {
  holms::manet::Manet::Params p;
  p.radio.range_m = 0.0;
  EXPECT_THROW(holms::manet::Manet(p, Rng(7)), std::invalid_argument);
  p.radio.range_m = -10.0;
  EXPECT_THROW(holms::manet::Manet(p, Rng(7)), std::invalid_argument);
}

TEST(Robust, ManetDegenerateParamsThrow) {
  holms::manet::Manet::Params p;
  p.field_m = 0.0;
  EXPECT_THROW(holms::manet::Manet(p, Rng(7)), std::invalid_argument);
  p = {};
  p.battery_j = -1.0;
  EXPECT_THROW(holms::manet::Manet(p, Rng(7)), std::invalid_argument);
  p = {};
  p.min_speed_mps = 5.0;
  p.max_speed_mps = 1.0;  // inverted speed interval
  EXPECT_THROW(holms::manet::Manet(p, Rng(7)), std::invalid_argument);
}

TEST(Robust, ManetLifetimeFaultIdOutOfRangeThrows) {
  holms::manet::Manet::Params p;
  p.num_nodes = 5;
  const auto sched = holms::fault::FaultSchedule::from_trace(
      {{1.0, holms::fault::FaultKind::kFail, holms::fault::Target::kNode,
        p.num_nodes}});
  holms::manet::LifetimeConfig cfg;
  cfg.max_time_s = 10.0;
  EXPECT_THROW(holms::manet::simulate_lifetime(
                   holms::manet::Protocol::kMinPower, p, cfg, 6, &sched),
               std::invalid_argument);
}

TEST(Robust, ManetTwoNodesOutOfRange) {
  holms::manet::Manet::Params p;
  p.num_nodes = 2;
  p.field_m = 50000.0;
  holms::manet::Manet net(p, Rng(7));
  const auto route = holms::manet::find_route(
      net, holms::manet::Protocol::kMinPower, 0, 1, 1000.0);
  if (!net.connected(0, 1)) {
    EXPECT_TRUE(route.empty());
  }
}

// ---------- core ----------

TEST(Robust, ExplorerImpossibleQosReportsInfeasible) {
  holms::core::Application app;
  app.graph.add_node("t0", 1e12);  // absurd work
  app.graph.add_node("t1", 1e12);
  app.graph.add_edge(0, 1, 1e6);
  app.qos.period_s = 1e-6;
  const auto plat = holms::core::Platform::homogeneous(2, 2);
  Rng rng(8);
  const auto res = holms::core::explore(app, plat, rng);
  EXPECT_FALSE(res.found_feasible);
  EXPECT_TRUE(res.pareto.empty());
}

TEST(Robust, AmbientScheduleTileIdOutOfRangeThrows) {
  holms::core::Application app;
  app.graph.add_node("a", 1e6);
  app.graph.add_node("b", 1e6);
  app.graph.add_edge(0, 1, 1e5);
  const auto plat = holms::core::Platform::homogeneous(2, 2);
  const auto sched = holms::fault::FaultSchedule::from_trace(
      {{1.0, holms::fault::FaultKind::kFail, holms::fault::Target::kTile,
        plat.mesh.num_tiles()}});
  holms::core::AmbientOptions opts;
  opts.schedule = &sched;
  EXPECT_THROW(
      holms::core::run_ambient_scenario(
          app, plat, holms::core::FaultPolicy::kStatic, {}, opts),
      std::invalid_argument);
}

TEST(Robust, SlotLossTraceInvalidConfigThrows) {
  EXPECT_THROW(holms::streaming::SlotLossTrace(nullptr, 0.0),
               std::invalid_argument);
  EXPECT_THROW(holms::streaming::SlotLossTrace(nullptr, 1.0, -0.1, 0.3),
               std::invalid_argument);
  EXPECT_THROW(holms::streaming::SlotLossTrace(nullptr, 1.0, 0.0, 1.5),
               std::invalid_argument);
}

TEST(Robust, AmbientZeroDuration) {
  holms::core::Application app;
  app.graph.add_node("a", 1e6);
  app.graph.add_node("b", 1e6);
  app.graph.add_edge(0, 1, 1e5);
  const auto plat = holms::core::Platform::homogeneous(2, 2);
  holms::core::AmbientConfig cfg;
  cfg.duration_s = 0.0;
  const auto r = holms::core::run_ambient_scenario(
      app, plat, holms::core::FaultPolicy::kStatic, cfg);
  EXPECT_EQ(r.periods, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 0.0);
}

}  // namespace
