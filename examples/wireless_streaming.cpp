// Network-centric design (paper §4): an MPEG-4 FGS streaming client on a
// battery-powered handheld, combining three energy mechanisms:
//   - client-feedback FGS rate adaptation (§4.1)
//   - DVFS on the decode processor (§4)
//   - game-theoretic transceiver adaptation on the radio link (§4, [26])
//
// Build & run:  ./build/examples/wireless_streaming
#include <cmath>
#include <cstdio>

#include "dvfs/dvfs.hpp"
#include "streaming/fgs.hpp"
#include "wireless/transceiver.hpp"

int main() {
  using namespace holms::streaming;
  using namespace holms::wireless;

  // --- Stream adaptation layer.
  FgsConfig cfg;
  cfg.slot_s = 0.5;
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  ChannelTrace ch_blind(holms::sim::Rng(7));
  ChannelTrace ch_fb(holms::sim::Rng(7));
  holms::dvfs::Processor cpu2 = cpu;
  const std::size_t slots = 2400;  // 20 minutes of video
  const auto blind =
      run_fgs_session(FgsPolicy::kNonAdaptive, cfg, cpu, ch_blind, slots);
  const auto fb =
      run_fgs_session(FgsPolicy::kClientFeedback, cfg, cpu2, ch_fb, slots);

  std::printf("MPEG-4 FGS session, %zu slots (%.0f min):\n", slots,
              slots * cfg.slot_s / 60.0);
  std::printf("  %-18s %10s %10s %10s %8s\n", "policy", "rx-J", "cpu-J",
              "PSNR-dB", "load");
  std::printf("  %-18s %10.2f %10.2f %10.1f %8.2f\n", "non-adaptive",
              blind.client_rx_energy_j, blind.client_cpu_energy_j,
              blind.mean_psnr_db, blind.mean_normalized_load);
  std::printf("  %-18s %10.2f %10.2f %10.1f %8.2f\n", "client-feedback",
              fb.client_rx_energy_j, fb.client_cpu_energy_j,
              fb.mean_psnr_db, fb.mean_normalized_load);
  std::printf("  client energy saving: %.1f%%\n",
              100.0 * (1.0 - fb.client_total_energy_j /
                                 blind.client_total_energy_j));

  // --- Radio layer: adapt modulation/power/decoder over a fading channel.
  RadioModel radio;
  EnergyManager mgr(radio, EnergyManager::Options{});
  const double worst = 1e-10;
  const auto fixed = mgr.static_config(worst);
  holms::sim::Rng rng(8);
  double log_gain = std::log(5e-10);
  double e_static = 0.0, e_adapt = 0.0;
  TransceiverConfig prev = fixed;
  const int radio_slots = 300;
  for (int s = 0; s < radio_slots; ++s) {
    log_gain = 0.9 * log_gain + 0.1 * std::log(5e-10) +
               rng.normal(0.0, 0.25);
    const double gain = std::max(worst, std::min(std::exp(log_gain), 1e-8));
    e_static += mgr.evaluate(fixed.modulation, fixed.tx_power_w, fixed.code,
                             gain)
                    .energy_per_bit_j;
    prev = mgr.game_theoretic(gain, prev);
    e_adapt += prev.energy_per_bit_j;
  }
  std::printf("\nradio link over %d fading slots:\n", radio_slots);
  std::printf("  static design   : %.2f nJ/bit\n",
              e_static / radio_slots * 1e9);
  std::printf("  game-theoretic  : %.2f nJ/bit  (%.1f%% saving)\n",
              e_adapt / radio_slots * 1e9,
              100.0 * (1.0 - e_adapt / e_static));
  std::printf("\ncombined: stream-level + radio-level adaptation are the "
              "two §4 knobs of the holistic methodology.\n");
  return 0;
}
