// Quickstart: the holistic design loop in ~60 lines.
//
// 1. Describe a multimedia application as a process graph with QoS.
// 2. Describe a heterogeneous NoC platform.
// 3. Let the explorer find the best mapping + DVS schedule.
// 4. Read the QoS/energy report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/explorer.hpp"
#include "core/platform.hpp"

int main() {
  using namespace holms::core;

  // --- 1. The application: a small audio+video pipeline, one iteration
  // every 40 ms (soft real-time, paper §2.1).
  Application app;
  app.name = "av-decoder";
  const auto src = app.graph.add_node("demux", 1.0e6);
  const auto vdec = app.graph.add_node("video-dec", 8.0e6);
  const auto adec = app.graph.add_node("audio-dec", 2.0e6);
  const auto sync = app.graph.add_node("av-sync", 0.5e6);
  const auto disp = app.graph.add_node("display", 1.5e6);
  app.graph.add_edge(src, vdec, 4.0e5);
  app.graph.add_edge(src, adec, 0.6e5);
  app.graph.add_edge(vdec, sync, 6.0e5);
  app.graph.add_edge(adec, sync, 0.8e5);
  app.graph.add_edge(sync, disp, 6.5e5);
  app.qos.period_s = 0.040;   // lip-sync deadline per iteration
  app.qos.max_power_w = 0.5;  // battery budget

  // --- 2. The platform: a 3x3 mesh, mostly ASIP tiles with one ASIC.
  Platform plat = Platform::homogeneous(3, 3, asip_tile());
  plat.tiles[4] = asic_tile();  // center tile is a hardwired decoder

  // --- 3. Explore mappings and schedulers.
  holms::sim::Rng rng(1);
  const ExploreResult res = explore(app, plat, rng);

  // --- 4. Report.
  if (!res.found_feasible) {
    std::printf("no feasible design found — relax the QoS contract\n");
    return 1;
  }
  const auto& best = res.best;
  std::printf("best design for '%s' (%zu candidates evaluated):\n",
              app.name.c_str(), res.evaluated);
  for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
    const auto tile = best.mapping[i];
    std::printf("  %-11s -> tile %zu (%s), DVS level %zu\n",
                app.graph.node(i).name.c_str(), tile,
                tile_type_name(plat.tiles[tile].type).c_str(),
                best.eval.schedule.placement[i].dvs_level);
  }
  std::printf("  makespan      : %.2f ms (deadline %.0f ms)\n",
              best.eval.schedule.makespan_s * 1e3, app.qos.period_s * 1e3);
  std::printf("  energy/period : %.1f uJ  (avg power %.3f W, cap %.1f W)\n",
              best.eval.total_energy_j * 1e6, best.eval.average_power_w,
              app.qos.max_power_w);
  std::printf("  scheduler     : %s\n", best.use_dvs ? "energy-aware DVS"
                                                     : "EDF at fmax");
  std::printf("  pareto front  : %zu designs (energy vs latency)\n",
              res.pareto.size());
  return 0;
}
