// §4.2 walkthrough: a mobile ad hoc network of multimedia hosts where
// "every multimedia host has to perform the functions of a router" —
// comparing minimum-power routing against the two lifetime-aware families.
//
// Build & run:  ./build/examples/manet_lifetime
#include <cstdio>

#include "manet/routing.hpp"

int main() {
  using namespace holms::manet;

  Manet::Params params;
  params.num_nodes = 36;
  params.field_m = 350.0;
  params.battery_j = 8.0;

  LifetimeConfig cfg;
  cfg.num_flows = 8;
  cfg.packets_per_second = 15.0;
  cfg.max_time_s = 20000.0;
  cfg.mobile = true;

  std::printf("MANET: %zu multimedia hosts on a %.0fx%.0f m field, "
              "%zu CBR flows, random-waypoint mobility\n",
              params.num_nodes, params.field_m, params.field_m,
              cfg.num_flows);
  std::printf("lifetime = time until %.0f%% of hosts die\n\n",
              cfg.dead_fraction * 100.0);

  std::printf("%-28s %12s %12s %10s %14s\n", "protocol", "1st-death-s",
              "lifetime-s", "delivery", "discoveries");
  double mpr = 0.0;
  for (const Protocol p : {Protocol::kMinPower, Protocol::kBatteryCost,
                           Protocol::kLifetimePrediction,
                           Protocol::kGafSleep}) {
    const LifetimeResult r = simulate_lifetime(p, params, cfg, 1234);
    if (p == Protocol::kMinPower) mpr = r.lifetime_s;
    std::printf("%-28s %12.0f %12.0f %10.3f %14llu\n",
                protocol_name(p).c_str(), r.first_death_s, r.lifetime_s,
                r.delivery_ratio,
                static_cast<unsigned long long>(r.route_discoveries));
  }
  std::printf("\nmin-power routing re-uses the cheapest relays until they "
              "die; battery-cost and lifetime-prediction routing spread the "
              "forwarding load (lifetime gain vs MPR is the §4.2 >20%% "
              "claim; exact value depends on topology/seed, mpr=%.0fs "
              "here).\n", mpr);
  return 0;
}
