// The paper's §3.2 example, end to end: "a video surveillance system that
// has to perform such diverse tasks as motion detection, filtering,
// rendering, object matching ... each performed by one dedicated
// application-specific computation node."
//
// This example maps the surveillance pipeline onto a 4x4 NoC with the
// energy-aware mapper, then replays the mapped traffic on the flit-accurate
// wormhole simulator and compares against an ad-hoc placement.
//
// Build & run:  ./build/examples/surveillance_noc
#include <cstdio>

#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/taskgraph.hpp"

using namespace holms::noc;

namespace {

NocStats replay(const AppGraph& g, const Mesh2D& mesh, const Mapping& m,
                std::uint64_t seed) {
  NocSim sim(mesh, NocSim::Config{}, holms::sim::Rng(seed));
  const double total = g.total_volume();
  for (const auto& e : g.edges()) {
    if (m[e.src] == m[e.dst]) continue;
    Flow f;
    f.src = m[e.src];
    f.dst = m[e.dst];
    f.packet_flits = 8;
    f.packets_per_cycle = 0.3 * e.volume_bits / total;
    sim.add_flow(f);
  }
  sim.run(50000);
  return sim.stats();
}

}  // namespace

int main() {
  const AppGraph g = video_surveillance_graph();
  const Mesh2D mesh(4, 4);
  const EnergyModel em;
  holms::sim::Rng rng(3);

  std::printf("video surveillance pipeline: %zu cores, %zu flows\n",
              g.num_nodes(), g.edges().size());

  // Energy-aware mapping vs an ad-hoc one.
  SaOptions sa;
  sa.iterations = 20000;
  const Mapping tuned = sa_mapping(g, mesh, em, rng, sa);
  const Mapping adhoc = random_mapping(g.num_nodes(), mesh, rng);

  const auto et = evaluate_mapping(g, mesh, em, tuned);
  const auto ea = evaluate_mapping(g, mesh, em, adhoc);
  std::printf("\nanalytic mapping cost (bit-energy model):\n");
  std::printf("  energy-aware: %.1f uJ/iter, %.2f volume-weighted hops\n",
              et.comm_energy_j * 1e6, et.volume_weighted_hops);
  std::printf("  ad-hoc      : %.1f uJ/iter, %.2f volume-weighted hops\n",
              ea.comm_energy_j * 1e6, ea.volume_weighted_hops);
  std::printf("  saving      : %.1f%%\n",
              100.0 * (1.0 - et.comm_energy_j / ea.comm_energy_j));

  std::printf("\nplacement of the high-bandwidth path (tile = y*4+x):\n");
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    std::printf("  %-14s tile %2zu (%zu,%zu)\n", g.node(i).name.c_str(),
                tuned[i], mesh.x_of(tuned[i]), mesh.y_of(tuned[i]));
  }

  std::printf("\nflit-level replay (wormhole, XY routing):\n");
  const auto st = replay(g, mesh, tuned, 10);
  const auto sa2 = replay(g, mesh, adhoc, 10);
  std::printf("  %-14s %12s %12s %14s\n", "mapping", "latency-cyc",
              "p99-cyc", "energy-pJ/bit");
  std::printf("  %-14s %12.1f %12.1f %14.2f\n", "energy-aware",
              st.mean_packet_latency, st.p99_packet_latency,
              st.energy_per_bit_pj);
  std::printf("  %-14s %12.1f %12.1f %14.2f\n", "ad-hoc",
              sa2.mean_packet_latency, sa2.p99_packet_latency,
              sa2.energy_per_bit_pj);
  return 0;
}
