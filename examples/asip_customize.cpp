// §3.1 walkthrough: customizing the extensible processor for the
// voice-recognition application, step by step through the Fig.2 boxes —
// profile, identify, define, retarget, verify — using the automated flow.
//
// Build & run:  ./build/examples/asip_customize
#include <cstdio>

#include "asip/flow.hpp"

int main() {
  using namespace holms::asip;

  VoiceRecognitionApp app;
  std::printf("application: small-vocabulary voice recognition\n");
  std::printf("  %zu-sample utterance, %zu filters x %zu taps, "
              "%zu-word codebook, %zu templates\n\n",
              app.params().signal_len, app.params().num_filters,
              app.params().taps, app.params().codebook_size,
              app.params().num_templates);

  // Box 1-2: profile the application on the plain base core.
  std::int32_t word = -1;
  const RunResult base = evaluate_app(app, CoreConfig{}, {}, 42, &word);
  std::printf("[profiling] base core: %llu cycles, recognized word %d\n",
              static_cast<unsigned long long>(base.cycles), word);
  for (const auto& [region, prof] : hotspots(base)) {
    std::printf("  %-12s %5.1f%% of cycles\n", region.c_str(),
                100.0 * static_cast<double>(prof.cycles) /
                    static_cast<double>(base.cycles));
  }

  // Boxes 3-6, iterated: the automated explore/define/retarget/verify loop.
  FlowOptions opts;  // < 10 extensions, < 200k gates — the paper's envelope
  const FlowResult fr = run_design_flow(app, opts);
  std::printf("\n[exploration] accepted moves:\n");
  for (const auto& step : fr.trace) {
    std::printf("  %-26s -> %9llu cycles (%.2fx), %.0f gates\n",
                step.move.c_str(),
                static_cast<unsigned long long>(step.cycles),
                step.speedup_vs_base, step.gates);
  }

  // Verify: the customized core must still produce the same decision.
  std::int32_t word2 = -1;
  evaluate_app(app, fr.best.cfg, fr.best.extensions, 42, &word2);
  std::printf("\n[verify] customized core recognizes word %d (%s)\n", word2,
              word2 == word ? "bit-exact with base core" : "MISMATCH");

  std::printf("\nfinal core: %zu custom instructions {",
              fr.best.extensions.size());
  for (std::size_t i = 0; i < fr.best.extensions.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", fr.best.extensions[i].c_str());
  }
  std::printf("}\n  speedup %.2fx, %.0f gates (budget %.0f), energy ratio "
              "%.2f\n",
              fr.best.speedup_vs_base, fr.best.gates, opts.gate_budget,
              fr.best.energy_ratio_vs_base);
  std::printf("paper's §3.1 envelope: 5x-10x, <10 instructions, <200k "
              "gates.\n");
  return 0;
}
