// §5 walkthrough — ambient multimedia in a smart space:
// "many tiny cameras inconspicuously embedded into the surroundings along
//  with support from smart interfaces, flexible middleware ... able to
//  operate with limited resources and failing parts, and, at the same time,
//  really inexpensive."
//
// This example (1) synthesizes a cost-bounded heterogeneous platform for a
// surveillance workload, (2) admits a second application onto the same
// platform (resource sharing, §1), and (3) subjects the deployment to tile
// failures with adaptive remapping (§5 / [33]).
//
// Build & run:  ./build/examples/ambient_space
#include <cstdio>

#include "core/ambient.hpp"
#include "core/explorer.hpp"
#include "noc/taskgraph.hpp"

using namespace holms::core;

int main() {
  holms::sim::Rng rng(17);

  // --- 1. Synthesize the platform under a cost budget.
  Application camera_app;
  camera_app.name = "camera-analytics";
  camera_app.graph = holms::noc::random_graph(10, rng, 6e5);
  camera_app.qos.period_s = 0.033;  // 30 fps analysis

  SynthesisOptions synth;
  synth.cost_budget = 24.0;  // "really inexpensive"
  synth.explore.restarts = 1;
  synth.explore.sa.iterations = 2500;
  const SynthesisResult built =
      synthesize_platform(camera_app, 4, 4, rng, synth);
  if (!built.found_feasible) {
    std::printf("no feasible platform under the cost budget\n");
    return 1;
  }
  std::printf("synthesized platform (budget %.1f):\n", synth.cost_budget);
  for (const auto& step : built.trace) {
    std::printf("  upgraded tile %zu to %s -> %.0f uJ/period, cost %.1f\n",
                step.tile, tile_type_name(step.to).c_str(),
                step.energy_j * 1e6, step.cost);
  }
  std::printf("  final: %.0f uJ/period at platform cost %.1f\n",
              built.design.best.eval.total_energy_j * 1e6,
              built.design.best.eval.platform_cost);

  // --- 2. Admit a second application onto the same fabric.
  Application audio_app;
  audio_app.name = "audio-scene";
  audio_app.graph = holms::noc::random_graph(6, rng, 1e5);
  audio_app.qos.period_s = 0.020;
  holms::sim::Rng rng2 = rng.fork();
  const ExploreResult audio_fit =
      explore(audio_app, built.platform, rng2, synth.explore);
  if (audio_fit.found_feasible) {
    const MultiAppEvaluation shared = evaluate_multi_design(
        {camera_app, audio_app}, built.platform,
        {built.design.best.mapping, audio_fit.best.mapping}, true);
    std::printf("\nshared deployment of %zu applications: %s "
                "(max tile utilization %.2f, total power %.3f W)\n",
                shared.per_app.size(),
                shared.feasible ? "admitted" : "REJECTED",
                shared.max_tile_utilization, shared.total_power_w);
  }

  // --- 3. Failing parts: static vs adaptive over a day of operation.
  AmbientConfig amb;
  amb.duration_s = 1800.0;
  amb.tile_mtbf_s = 1200.0;
  std::printf("\nfault tolerance (tile MTBF %.0f s over %.0f s):\n",
              amb.tile_mtbf_s, amb.duration_s);
  for (const FaultPolicy pol :
       {FaultPolicy::kStatic, FaultPolicy::kAdaptiveRemap}) {
    const AmbientResult r =
        run_ambient_scenario(camera_app, built.platform, pol, amb);
    std::printf("  %-9s availability %.3f (%zu failures, %zu remaps)\n",
                pol == FaultPolicy::kStatic ? "static" : "adaptive",
                r.availability, r.failures_injected, r.remaps_performed);
  }
  return 0;
}
